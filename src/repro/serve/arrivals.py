"""Seeded open-loop arrival generation.

The whole arrival sequence of a session is materialised *before* the
service loop runs, from named :class:`~repro.util.rng.RngStream`\\ s
derived from the config seed alone.  That buys two properties the
serving experiments lean on:

* **bit-identity** — equal configs produce equal ``(time, kind)``
  sequences on any host, at any ``--jobs`` count, whatever the service
  loop later does with them;
* **open-loop semantics** — arrivals never depend on service progress
  (the defining property of goodput-vs-offered-load studies: offered
  load keeps coming whether or not the cluster keeps up).

The diurnal process is Lewis–Shedler thinning of a homogeneous Poisson
process at the peak rate: candidates arrive at
``rate * (1 + amplitude)`` and survive with probability
``lambda(t) / peak`` where ``lambda(t) = rate * (1 + amplitude *
sin(2*pi*t / period))``.  Thinning draws exactly one acceptance coin
per candidate, so the draw order — and hence the sequence — is fixed.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.serve.config import ServiceConfig
from repro.util.rng import RngStream

__all__ = ["Arrival", "diurnal_rate", "generate_arrivals", "offered_rate"]


def diurnal_rate(
    t_now: float, *, base: float, amplitude: float, period: float
) -> float:
    """The diurnal curve ``base * (1 + amplitude * sin(2*pi*t/period))``.

    The single source of truth for the sinusoid: arrival thinning uses
    it for request rates and :mod:`repro.dynamics` reuses it for
    background-load intensities, so both layers modulate identically.
    """
    return base * (1.0 + amplitude * math.sin(2.0 * math.pi * t_now / period))


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One request hitting the front door."""

    request_id: int
    time: float
    kind: int  # index into config.workload


def offered_rate(config: ServiceConfig) -> float:
    """Mean offered load in requests per simulated second."""
    # The sinusoidal modulation integrates to zero over whole periods,
    # so the diurnal mean equals the base rate.
    return config.arrival.rate


def generate_arrivals(config: ServiceConfig) -> tuple[Arrival, ...]:
    """The session's full arrival sequence, sorted by time."""
    spec = config.arrival
    times = RngStream(config.seed, "serve", "arrivals")
    kinds = RngStream(config.seed, "serve", "kinds")
    weights = [kind.weight for kind in config.workload]
    total_weight = sum(weights)
    cdf = []
    running = 0.0
    for weight in weights:
        running += weight / total_weight
        cdf.append(running)
    cdf[-1] = 1.0  # guard the float tail so every draw lands somewhere

    peak = spec.rate * (1.0 + (spec.amplitude if spec.process == "diurnal" else 0.0))
    out: list[Arrival] = []
    now = 0.0
    while True:
        now += times.exponential(1.0 / peak)
        if now >= config.duration:
            break
        if spec.process == "diurnal":
            lam = diurnal_rate(
                now, base=spec.rate, amplitude=spec.amplitude, period=spec.period
            )
            if times.uniform() >= lam / peak:
                continue
        draw = kinds.uniform()
        kind = next(i for i, bound in enumerate(cdf) if draw < bound)
        out.append(Arrival(request_id=len(out), time=now, kind=kind))
    return tuple(out)


def kind_counts(
    config: ServiceConfig, arrivals: t.Sequence[Arrival]
) -> dict[str, int]:
    """``{kind name: arrivals}`` — the realised request mix."""
    counts = {kind.name: 0 for kind in config.workload}
    for arrival in arrivals:
        counts[config.workload[arrival.kind].name] += 1
    return counts
