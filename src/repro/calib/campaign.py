"""Probe campaigns that make every parameter identifiable.

A single collective run only pins down the parameters on its own
critical path — the receiving root's ``G`` and the levels it crossed.
A *root sweep* of gathers fixes that: rooting the gather at every
machine in turn makes each machine the dominant receiver of its own
runs, so every ``G_j`` shows up as a critical coefficient, and running
several problem sizes separates the per-byte term from the constant
``L`` offsets (two sizes would do for a line; more average noise down).

This is the measurement half of ``repro calibrate --fit``: simulate
(or replay) the campaign, export the runs, and feed them to
:func:`repro.calib.fit_params`.
"""

from __future__ import annotations

import typing as t

from repro.cluster.topology import ClusterTopology
from repro.obs.accounting import RunObs, collect_run_obs

__all__ = ["calibration_campaign", "DEFAULT_SIZES"]

#: Problem sizes of the default campaign: spread over ~an order of
#: magnitude so per-byte and constant terms separate cleanly.
DEFAULT_SIZES: tuple[int, ...] = (4096, 16384, 65536)


def calibration_campaign(
    topology: ClusterTopology,
    *,
    sizes: t.Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    macro: bool = True,
    roots: t.Sequence[int] | None = None,
) -> tuple[RunObs, ...]:
    """Gather root sweep: one run per ``(size, root)``, as run records.

    ``roots`` restricts the sweep (default: every machine).  ``macro``
    uses the macro-event engine — bit-identical marks at a fraction of
    the event count, which is what makes sweeping a big machine cheap.
    """
    from repro.collectives import run_gather

    if roots is None:
        roots = range(topology.num_machines)
    runs: list[RunObs] = []
    for n in sizes:
        for root in roots:
            outcome = run_gather(
                topology, int(n), root=int(root), seed=seed, macro=macro
            )
            runs.append(collect_run_obs(outcome))
    return tuple(runs)
