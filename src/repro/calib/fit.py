"""Trace-driven parameter estimation: ``HBSPParams`` from run traces.

:func:`fit_params` closes the modelling loop.  :func:`repro.model.calibrate`
goes *topology -> parameters*; this goes *observed runs -> parameters*:
given exported :class:`~repro.obs.accounting.RunObs` records (a root
sweep of gathers, say — :func:`repro.calib.campaign.calibration_campaign`
builds exactly that), it solves the per-superstep cost equations

    ``G_crit * h_crit + L_level = d - w``,   ``G_j = g * r_j``

by iterated least squares: the critical machine of each step depends on
the parameters, so the solver alternates between assigning
``crit = argmax_j G_j * h_j`` under the current estimate and re-solving
the now-linear system, starting from all-equal ``G`` so the *data*
picks the critical machines, not the priors.  On a gather root sweep
every machine is the receiver (hence critical) in its own runs, which
makes all ``G_j`` identifiable from traffic alone.

Machines never critical in any equation and levels never observed are
unidentifiable from the trace; they fall back to
:func:`~repro.model.calibrate`'s topology priors and are listed in the
result so callers know which numbers were measured and which assumed.
``L`` is fitted per *level* (the estimator's granularity) and assigned
to every cluster node on that level.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.cluster.topology import ClusterTopology
from repro.errors import CalibrationError
from repro.model.params import HBSPParams, calibrate
from repro.model.residuals import StepEquation, step_equations
from repro.model.tree import HBSPTree
from repro.obs.accounting import RunObs

__all__ = ["FitResult", "fit_params", "load_runs"]

_MAX_ITER = 12
_G_FLOOR = 1e-30


@dataclasses.dataclass(frozen=True)
class FitResult:
    """A fitted parameter set plus everything about how it was fitted."""

    params: HBSPParams
    g: float
    G: tuple[tuple[str, float], ...]  # fitted g*r per machine name
    L: tuple[tuple[int, float], ...]  # fitted barrier cost per level
    residual: float  # normalised RMS of remaining per-step divergence
    equations: int
    runs_used: int
    runs_skipped: int
    source: str
    fallback_machines: tuple[str, ...]
    fallback_levels: tuple[int, ...]

    def describe(self) -> str:
        """Human-readable fit summary (parameters + provenance)."""
        lines = [
            f"fit from {self.runs_used} runs "
            f"({self.runs_skipped} skipped), {self.equations} step equations, "
            f"source={self.source}",
            f"  g = {self.g:.6g} s/byte   residual (nRMS) = {self.residual:.3g}",
        ]
        for name, value in self.G:
            marker = " (prior)" if name in self.fallback_machines else ""
            lines.append(f"  G[{name}] = {value:.6g}  r = {value / self.g:.4g}{marker}")
        for level, value in self.L:
            marker = " (prior)" if level in self.fallback_levels else ""
            lines.append(f"  L[level {level}] = {value:.6g}{marker}")
        lines.append(self.params.describe())
        return "\n".join(lines)


def load_runs(path: str) -> tuple[RunObs, ...]:
    """Load exported runs (``repro run --runs-out``) back into memory."""
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CalibrationError(f"cannot read runs file {path!r}: {error}") from None
    except ValueError as error:
        raise CalibrationError(f"runs file {path!r} is not valid JSON: {error}") from None
    if not isinstance(data, dict) or "runs" not in data:
        raise CalibrationError(f'runs file {path!r} must be an object with "runs"')
    return tuple(RunObs.from_jsonable(record) for record in data["runs"])


def _solve(
    equations: t.Sequence[StepEquation],
    machine_names: t.Sequence[str],
    levels: t.Sequence[int],
    init: t.Mapping[str, float],
) -> tuple[dict[str, float], dict[int, float], list[int]]:
    """Iterated least squares over the step equations.

    ``init`` seeds the critical-machine assignment (only ratios matter
    for an argmax): collectives on symmetric trees produce *exact*
    h-byte ties — a gather's sender and receiver move the same bytes —
    which the data alone cannot attribute, so the first assignment
    breaks them the way the priors order the machines, and subsequent
    iterations re-break them with fitted values.

    Returns ``(G by machine, L by level, final critical assignment)``.
    """
    import numpy as np

    machine_col = {name: i for i, name in enumerate(machine_names)}
    level_col = {level: len(machine_names) + i for i, level in enumerate(levels)}
    n_cols = len(machine_names) + len(levels)

    G = dict(init)
    crit: list[int] = [-1] * len(equations)
    for _ in range(_MAX_ITER):
        new_crit: list[int] = []
        for eq in equations:
            best, best_load = -1, -1.0
            for idx, (name, h) in enumerate(eq.h):
                load = G[name] * h
                if load > best_load:
                    best, best_load = idx, load
            new_crit.append(best)
        matrix = np.zeros((len(equations), n_cols))
        rhs = np.zeros(len(equations))
        for row, (eq, c) in enumerate(zip(equations, new_crit)):
            name, h = eq.h[c]
            if h > 0:
                matrix[row, machine_col[name]] = h
            matrix[row, level_col[eq.level]] = 1.0
            rhs[row] = eq.rhs
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        G = {
            name: max(float(solution[machine_col[name]]), _G_FLOOR)
            for name in machine_names
        }
        L = {
            level: max(float(solution[level_col[level]]), 0.0)
            for level in levels
        }
        if new_crit == crit:
            break
        crit = new_crit
    return G, L, crit


def fit_params(
    runs: t.Sequence[RunObs],
    topology: ClusterTopology,
    *,
    source: str = "simulated",
    scores: t.Mapping[str, float] | None = None,
) -> FitResult:
    """Estimate :class:`HBSPParams` from observed runs on ``topology``.

    ``source="simulated"`` (default) fits against what the DES took —
    effective parameters whose residual is the ledger's remaining
    sim/pred divergence.  ``source="predicted"`` fits against the
    exported analytic step costs — the estimator round-trip, exact on
    noise-free data.  ``c`` fractions and fan-outs are structural and
    come from :func:`~repro.model.calibrate` (with optional BYTEmark
    ``scores``), exactly as a topology-only calibration would set them.
    """
    priors = calibrate(topology, scores=scores)
    equations: list[StepEquation] = []
    runs_used = 0
    runs_skipped = 0
    for run in runs:
        eqs = step_equations(run, source=source)
        if eqs:
            runs_used += 1
            equations.extend(eqs)
        else:
            runs_skipped += 1
    if not equations:
        raise CalibrationError(
            "no usable step equations: runs need predictions whose steps "
            "join 1:1 against the superstep marks (gather does; apps and "
            "two-phase broadcast do not)"
        )
    machine_names = [m.name for m in topology.machines]
    known = set(machine_names)
    for eq in equations:
        extra = {name for name, _ in eq.h} - known
        if extra:
            raise CalibrationError(
                f"run {eq.run!r} names machines not in the topology: "
                f"{', '.join(sorted(extra))}"
            )
    levels = sorted({eq.level for eq in equations})
    init = {
        name: priors.r_of(0, j) for j, name in enumerate(machine_names)
    }

    G, L, crit = _solve(equations, machine_names, levels, init)

    # Identifiability: a machine is measured only if it was critical
    # with traffic in some equation; a level only if some equation
    # anchored there (all levels in `levels` are, by construction).
    # Unmeasured machines fall back to the topology priors — note the
    # globally fastest machine is *systematically* unmeasured on
    # symmetric trees (with r = 1 it never attains max r_j * h_j), so
    # g must be the minimum over fitted and prior G alike, which keeps
    # the noise-free round-trip exact: prior G for the fastest machine
    # is exactly g.
    measured = {
        eq.h[c][0] for eq, c in zip(equations, crit) if eq.h[c][1] > 0
    }
    fallback_machines = tuple(
        name for name in machine_names if name not in measured
    )
    for j, name in enumerate(machine_names):
        if name not in measured:
            G[name] = priors.g * priors.r_of(0, j)
    g = min(G.values())
    r_fit = {name: G[name] / g for name in machine_names}

    # Residual: normalised RMS of what the fitted model still misses.
    errors = []
    scale = []
    for eq, c in zip(equations, crit):
        name, h = eq.h[c]
        modelled = G[name] * h + L[eq.level] + eq.w
        errors.append((modelled - eq.observed) ** 2)
        scale.append(eq.observed)
    mean_obs = math.fsum(scale) / len(scale)
    rms = math.sqrt(math.fsum(errors) / len(errors))
    residual = rms / mean_obs if mean_obs > 0 else rms

    # Rebuild a full parameter set the way calibrate() does, swapping
    # in the fitted r and per-level L.
    tree = HBSPTree(topology)
    topo = tree.topology
    r: dict[tuple[int, int], float] = {}
    L_nodes: dict[tuple[int, int], float] = {}
    for node in tree.walk():
        key = (node.level, node.index)
        coordinator = topo.machines[node.coordinator].name
        r[key] = r_fit[coordinator]
        if node.level >= 1:
            L_nodes[key] = L.get(node.level, priors.L_of(node.level, node.index))
    fallback_levels = tuple(
        level
        for level in range(1, tree.k + 1)
        if level not in L
    )
    params = HBSPParams(
        k=priors.k,
        g=g,
        m=priors.m,
        r=r,
        L=L_nodes,
        c=dict(priors.c),
        fan_out=dict(priors.fan_out),
    )
    return FitResult(
        params=params,
        g=g,
        G=tuple((name, G[name]) for name in machine_names),
        L=tuple(sorted(L.items())),
        residual=residual,
        equations=len(equations),
        runs_used=runs_used,
        runs_skipped=runs_skipped,
        source=source,
        fallback_machines=fallback_machines,
        fallback_levels=fallback_levels,
    )
