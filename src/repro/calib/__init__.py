"""repro.calib — closing the loop from traces back to model parameters.

:func:`repro.model.calibrate` derives :class:`~repro.model.HBSPParams`
from a topology's *specs*; this package derives them from *observed
runs*: :func:`calibration_campaign` sweeps gathers so every machine
becomes identifiable, :func:`fit_params` solves the superstep cost
equations by iterated least squares, and ``repro calibrate --fit``
wires the two into a CLI (trace in -> topology JSON v2 with fitted
parameters out).  See ``docs/calibration.md``.
"""

from repro.calib.campaign import DEFAULT_SIZES, calibration_campaign
from repro.calib.fit import FitResult, fit_params, load_runs
from repro.model.residuals import OBSERVATION_SOURCES, StepEquation, step_equations

__all__ = [
    "DEFAULT_SIZES",
    "FitResult",
    "OBSERVATION_SOURCES",
    "StepEquation",
    "calibration_campaign",
    "fit_params",
    "load_runs",
    "step_equations",
]
