"""The metrics registry and its determinism contract.

Metrics are fed from RunObs snapshots merged in submission order, so a
sweep's exported text must be byte-identical whatever the worker count
— the same promise the report renderer makes for ``--jobs``.
"""

from __future__ import annotations

import pytest

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy, run_gather
from repro.faults import DeliveryPolicy, FaultPlan, MessageFaults
from repro.obs import MetricsRegistry, observe, prometheus_text
from repro.obs.metrics import BUCKET_BOUNDS, METRIC_HELP, HistogramState
from repro.perf import SimJob, sweep


class TestRegistryUnit:
    def test_counters_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("repro_runs_total")
        registry.inc("repro_bytes_sent_total", 100.0, (("network", "lan"),))
        registry.inc("repro_bytes_sent_total", 50.0, (("network", "wan"),))
        assert registry.value("repro_runs_total") == 1.0
        assert registry.value("repro_bytes_sent_total", (("network", "lan"),)) == 100.0
        assert registry.counter_sum("repro_bytes_sent_total") == 150.0

    def test_snapshot_is_sorted_and_merges_back(self):
        a = MetricsRegistry()
        a.inc("z_total", 2.0)
        a.inc("a_total", 1.0)
        snapshot = a.counters_snapshot()
        assert [name for name, _, _ in snapshot] == ["a_total", "z_total"]
        b = MetricsRegistry()
        b.inc("a_total", 10.0)
        b.merge_counters(snapshot)
        assert b.value("a_total") == 11.0
        assert b.value("z_total") == 2.0

    def test_histogram_buckets_are_cumulative_with_inf(self):
        hist = HistogramState((1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            hist.observe(value)
        assert hist.cumulative() == [(1.0, 2), (10.0, 3), (float("inf"), 4)]
        assert hist.total == pytest.approx(106.2)

    def test_histogram_merge(self):
        a, b = HistogramState((1.0,)), HistogramState((1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.cumulative() == [(1.0, 1), (float("inf"), 2)]

    def test_registry_merge_folds_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("repro_runs_total", 3.0)
        b.set_gauge("depth", 2.0)
        b.observe("repro_superstep_seconds", 0.5)
        a.merge(b)
        assert a.value("repro_runs_total") == 3.0
        assert a.gauges[("depth", ())] == 2.0
        assert a.histograms[("repro_superstep_seconds", ())].count == 1

    def test_every_declared_histogram_has_fixed_bounds(self):
        for name, (mtype, _help) in METRIC_HELP.items():
            if mtype == "histogram":
                assert name in BUCKET_BOUNDS


class TestRunMetrics:
    def test_gather_populates_traffic_and_run_counters(self):
        with observe() as observation:
            outcome = run_gather(ucf_testbed(4), 1024)
            observation.ingest_outcome(outcome)
        metrics = observation.metrics
        assert metrics.value("repro_runs_total") == 1.0
        assert metrics.value("repro_supersteps_total") == float(outcome.supersteps)
        assert metrics.counter_sum("repro_messages_sent_total") == 3.0
        assert metrics.counter_sum("repro_bytes_sent_total") > 0.0

    def test_fault_drops_flow_through_vm_metrics(self):
        plan = FaultPlan(MessageFaults(drop_prob=0.3))
        with observe() as observation:
            outcome = run_gather(
                ucf_testbed(3), 512, root=RootPolicy.FASTEST,
                faults=plan, fault_seed=3,
                delivery=DeliveryPolicy.retry(3, timeout=0.25),
            )
            observation.ingest_outcome(outcome)
        injector = outcome.runtime.vm.injector
        dropped = observation.metrics.counter_sum("repro_messages_dropped_total")
        assert dropped > 0
        # No double bookkeeping: the injector property *is* the metric.
        assert injector.dropped_messages == int(
            outcome.runtime.vm.metrics.value("repro_messages_dropped_total")
        )
        assert injector.dropped_messages == int(dropped)


class TestSweepDeterminism:
    def _jobs_batch(self):
        return [
            SimJob.collective(
                "gather", ucf_testbed(p), n, root=RootPolicy.FASTEST, seed=0
            )
            for p in (2, 3)
            for n in (500, 1000)
        ]

    def _export(self, workers: int) -> str:
        from repro.perf import evaluate

        with observe() as observation:
            with sweep(jobs=workers):
                evaluate(self._jobs_batch())
        return prometheus_text(observation.metrics)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_metrics_identical_serial_vs_parallel(self, workers):
        assert self._export(1) == self._export(workers)

    def test_duplicate_jobs_count_once_per_occurrence(self):
        from repro.perf import evaluate

        job = SimJob.collective("gather", ucf_testbed(2), 500, seed=0)
        with observe() as observation:
            with sweep(jobs=1):
                evaluate([job, job, job])
        # Cache-deduped simulation, but three observed occurrences.
        assert observation.metrics.value("repro_runs_total") == 3.0
        assert len(observation.ledgers) == 3
