"""Superstep accounting: the simulated-vs-predicted join.

The ledger's contract: per-superstep simulated durations telescope to
the synchronised makespan, the critical machine is the model's
max-``r*h`` machine, divergence is *exactly* 1.0 when DES and kernel
agree (no epsilon), and the compact RunObs record JSON-round-trips to
the same doubles.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.cluster.presets import smp_sgi_lan, ucf_testbed
from repro.collectives import run_gather
from repro.obs import RunObs, SuperstepLedger
from repro.obs.accounting import _ratio, collect_run_obs


def _exact_topology(p: int = 2, sync_base: float = 0.25) -> ClusterTopology:
    """A machine where DES and cost kernel agree to the last bit.

    Zero per-byte, per-message, pack/unpack and latency costs leave the
    barrier (``sync_base``) as the only charge; both the simulator and
    the analytic ledger price it through the same network parameters,
    so a zero-volume gather costs exactly ``sync_base`` in both.
    """
    net = NetworkSpec(
        "wire", gap=0.0, latency=0.0, sync_base=sync_base, sync_per_member=0.0
    )
    machines = [
        MachineSpec(
            f"m{j}", cpu_rate=1e8, nic_gap=1e-7,
            pack_cost=0.0, unpack_cost=0.0, msg_overhead=0.0,
        )
        for j in range(p)
    ]
    return ClusterTopology(Cluster("lan", net, machines))


class TestRatio:
    def test_exact_agreement_is_exactly_one(self):
        assert _ratio(0.1 + 0.2, 0.1 + 0.2) == 1.0
        assert _ratio(0.0, 0.0) == 1.0

    def test_zero_prediction_with_nonzero_simulation_is_inf(self):
        assert _ratio(0.5, 0.0) == math.inf

    def test_no_prediction_is_none(self):
        assert _ratio(0.5, None) is None


class TestExactDivergence:
    def test_fault_free_agreeing_run_reports_exactly_one(self):
        outcome = run_gather(_exact_topology(), 0)
        ledger = SuperstepLedger(collect_run_obs(outcome))
        # Nondegenerate: the one superstep really costs the barrier.
        assert outcome.time == 0.25
        assert ledger.divergence == 1.0
        (row,) = ledger.rows
        assert row.ratio == 1.0
        assert row.simulated == row.predicted == 0.25

    def test_divergence_is_float_equality_not_epsilon(self):
        # A tiny but real disagreement must NOT round to 1.0.
        outcome = run_gather(_exact_topology(), 64)
        ledger = SuperstepLedger(collect_run_obs(outcome))
        assert ledger.divergence != 1.0


class TestLedgerJoin:
    def test_rows_telescope_to_the_synced_frontier(self, fig1_machine):
        outcome = run_gather(fig1_machine, 4096)
        run = collect_run_obs(outcome)
        ledger = SuperstepLedger(run)
        assert len(ledger.rows) == outcome.supersteps
        total = sum(row.simulated for row in ledger.rows)
        frontier = max(marks[-1][0] for marks in run.marks if marks)
        assert total == pytest.approx(frontier)
        assert frontier <= outcome.time + 1e-12

    def test_critical_machine_maximises_r_times_h(self):
        outcome = run_gather(ucf_testbed(6), 25_600)
        ledger = SuperstepLedger(collect_run_obs(outcome))
        for row in ledger.rows:
            best = max(row.machines, key=lambda m: m.rh)
            assert row.critical.rh == best.rh
            assert row.critical.h == max(
                row.critical.sent_bytes, row.critical.received_bytes
            )

    def test_join_matches_analytic_ledger_steps(self):
        outcome = run_gather(smp_sgi_lan(), 2048)
        ledger = SuperstepLedger(collect_run_obs(outcome))
        steps = outcome.predicted.steps
        assert [row.label for row in ledger.rows] == [s.label for s in steps]
        for row, step in zip(ledger.rows, steps):
            assert row.predicted == pytest.approx(step.total)

    def test_table_renders_sub_millisecond_times(self):
        outcome = run_gather(ucf_testbed(3), 256)
        ledger = SuperstepLedger(collect_run_obs(outcome))
        table = ledger.table(per_machine=True)
        assert "superstep ledger" in table
        assert "0.000 |" not in table  # %.6g, not the 3-decimal default
        assert "per-machine breakdown" in table


class TestRunObsRoundTrip:
    def test_json_round_trip_is_exact(self):
        outcome = run_gather(ucf_testbed(4), 1024)
        run = collect_run_obs(outcome)
        import json

        restored = RunObs.from_jsonable(json.loads(json.dumps(run.to_jsonable())))
        assert restored == run  # same doubles, not approximately

    def test_round_trip_preserves_missing_prediction(self):
        outcome = run_gather(ucf_testbed(2), 128)
        run = collect_run_obs(outcome)
        stripped = RunObs(
            name=run.name, machines=run.machines, r=run.r, marks=run.marks,
            predicted=None, counters=run.counters, time=run.time,
            predicted_time=None, supersteps=run.supersteps,
        )
        restored = RunObs.from_jsonable(stripped.to_jsonable())
        assert restored == stripped
        ledger = SuperstepLedger(restored)
        assert ledger.divergence is None
        assert all(row.predicted is None for row in ledger.rows)
