"""Span tracing: nesting, timing, and the disabled-tracer no-op.

The structural contract the Chrome-trace exporter relies on: every
(group, actor) track is a well-nested forest of intervals, superstep
spans contain their barrier and phase spans, and all simulated times
land inside the run's makespan.  A disabled tracer must record nothing
and cost nothing observable.
"""

from __future__ import annotations

from repro.cluster.presets import smp_sgi_lan, ucf_testbed
from repro.collectives import run_gather
from repro.obs import NULL_TRACER, Tracer, observe


class TestTracerUnit:
    def test_begin_finish_nests_on_one_track(self):
        tracer = Tracer(clock=lambda: 0.0)
        outer = tracer.begin("a", "outer", group="g", actor="m", start=0.0)
        inner = tracer.begin("a", "inner", group="g", actor="m", start=1.0)
        tracer.finish(inner, 2.0)
        tracer.finish(outer, 3.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == 1.0 and outer.duration == 3.0

    def test_add_parents_under_enclosing_open_span(self):
        tracer = Tracer()
        outer = tracer.begin("a", "outer", group="g", actor="m", start=0.0)
        leaf = tracer.add("b", "leaf", group="g", actor="m", start=0.5, end=0.75)
        assert leaf.parent_id == outer.span_id
        # A span that started before the open one cannot be its child.
        orphan = tracer.add("b", "orphan", group="g", actor="m", start=-1.0, end=-0.5)
        assert orphan.parent_id is None
        tracer.finish(outer, 1.0)

    def test_tracks_are_independent(self):
        tracer = Tracer()
        a = tracer.begin("c", "a", group="g", actor="m1", start=0.0)
        b = tracer.add("c", "b", group="g", actor="m2", start=0.1, end=0.2)
        assert b.parent_id is None
        tracer.finish(a, 1.0)

    def test_span_context_manager_uses_clock(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("harness", "work") as span:
            pass
        assert (span.start, span.end) == (10.0, 12.5)
        assert span.duration == 2.5

    def test_args_and_filter(self):
        tracer = Tracer()
        tracer.add("x", "one", group="g1", actor="m", start=0.0, end=1.0, n=5)
        tracer.add("y", "two", group="g2", actor="m", start=0.0, end=1.0)
        assert tracer.filter("x")[0].args == {"n": 5}
        assert len(tracer.filter(group="g2")) == 1
        assert tracer.groups() == ["g1", "g2"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("a", "x", group="g", actor="m", start=0.0) is None
        assert tracer.add("a", "x", group="g", actor="m", start=0.0, end=1.0) is None
        with tracer.span("a", "x") as span:
            assert span is None
        tracer.finish(None, 1.0)
        assert len(tracer) == 0
        assert len(NULL_TRACER) == 0

    def test_wrap_decorator(self):
        tracer = Tracer(clock=lambda: 0.0)

        @tracer.wrap("harness")
        def work() -> int:
            return 7

        assert work() == 7
        assert tracer.spans[0].name == "work"


class TestRunSpans:
    """Span structure of real simulated runs."""

    def _spans_of(self, topology, n=1024):
        with observe(spans=True) as observation:
            outcome = run_gather(topology, n)
            observation.ingest_outcome(outcome)
        return observation, outcome

    def test_two_level_gather_has_superstep_and_barrier_spans(self):
        observation, outcome = self._spans_of(smp_sgi_lan())
        tracer = observation.tracer
        supersteps = tracer.filter("superstep")
        barriers = tracer.filter("barrier")
        phases = tracer.filter("phase")
        assert supersteps and barriers and phases
        # k=2 gather: every pid syncs twice.
        machines = {s.actor for s in supersteps}
        assert len(machines) == outcome.runtime.nprocs
        for actor in machines:
            assert len([s for s in supersteps if s.actor == actor]) == 2

    def test_barrier_spans_nest_inside_superstep_spans(self):
        observation, _ = self._spans_of(smp_sgi_lan())
        tracer = observation.tracer
        by_id = {s.span_id: s for s in tracer.spans}
        for barrier in tracer.filter("barrier"):
            parent = by_id.get(barrier.parent_id)
            assert parent is not None and parent.category == "superstep"
            assert parent.start <= barrier.start
            assert barrier.end <= parent.end

    def test_span_times_lie_inside_the_makespan(self):
        observation, outcome = self._spans_of(ucf_testbed(4))
        for span in observation.tracer.spans:
            assert 0.0 <= span.start <= span.end <= outcome.time + 1e-12

    def test_all_run_spans_share_one_group_with_label(self):
        observation, outcome = self._spans_of(ucf_testbed(4))
        groups = observation.tracer.groups()
        assert groups == ["run1"]
        assert observation.tracer.group_labels["run1"] == outcome.name

    def test_no_observation_means_no_recording(self):
        outcome = run_gather(ucf_testbed(4), 1024)
        assert outcome.runtime.obs_tracer is None
        # The DES trace stays off too (trace=False default untouched).
        assert outcome.result.trace.records == []

    def test_metrics_only_observation_records_no_spans(self):
        with observe() as observation:
            outcome = run_gather(ucf_testbed(4), 1024)
            observation.ingest_outcome(outcome)
        assert len(observation.tracer) == 0
        assert outcome.runtime.obs_tracer is None
        assert len(observation.ledgers) == 1  # metrics still flow
