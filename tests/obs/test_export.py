"""Exporter formats: Chrome trace JSON, Prometheus text, CLI wiring.

Chrome traces must satisfy the ``trace_event`` schema (otherwise the
viewers silently drop events); Prometheus text must parse under the
exposition format's line grammar; and the CLI must write files only
when asked (flags off -> byte-identical stdout, nothing on disk).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cluster.presets import ucf_testbed
from repro.collectives import run_gather
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    observe,
    prometheus_text,
    summary,
)

#: One exposition-format sample line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" (\+Inf|-Inf|NaN|[0-9eE.+-]+)$"      # value
)


def _observed_gather(n: int = 1024, p: int = 4):
    with observe(spans=True) as observation:
        outcome = run_gather(ucf_testbed(p), n)
        observation.ingest_outcome(outcome)
    return observation, outcome


class TestChromeTrace:
    def test_document_shape(self):
        observation, _ = _observed_gather()
        doc = json.loads(chrome_trace(observation.tracer))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_complete_events_have_required_fields(self):
        observation, outcome = _observed_gather()
        events = json.loads(chrome_trace(observation.tracer))["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0.0
            assert 0.0 <= event["dur"] <= outcome.time * 1e6 + 1e-6
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)

    def test_metadata_names_processes_and_threads(self):
        observation, outcome = _observed_gather()
        events = json.loads(chrome_trace(observation.tracer))["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert outcome.name in process_names
        machine_names = {m.name for m in outcome.runtime.topology.machines}
        assert machine_names <= thread_names

    def test_events_reference_only_declared_tracks(self):
        observation, _ = _observed_gather()
        events = json.loads(chrome_trace(observation.tracer))["traceEvents"]
        declared = {
            (e["pid"], e["tid"]) for e in events if e["name"] == "thread_name"
        }
        for event in events:
            if event["ph"] == "X":
                assert (event["pid"], event["tid"]) in declared

    def test_empty_tracer_is_still_valid_json(self):
        doc = json.loads(chrome_trace(Tracer()))
        assert doc["traceEvents"] == []


class TestPrometheusText:
    def test_every_line_parses(self):
        observation, _ = _observed_gather()
        text = prometheus_text(observation.metrics)
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"

    def test_histograms_expand_to_cumulative_buckets(self):
        observation, _ = _observed_gather()
        text = prometheus_text(observation.metrics)
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_superstep_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative => non-decreasing
        assert 'le="+Inf"' in text
        count = next(
            line for line in text.splitlines()
            if line.startswith("repro_superstep_seconds_count")
        )
        assert int(count.rsplit(" ", 1)[1]) == buckets[-1]

    def test_type_and_help_precede_samples(self):
        observation, _ = _observed_gather()
        lines = prometheus_text(observation.metrics).splitlines()
        seen_type: set[str] = set()
        for line in lines:
            if line.startswith("# TYPE "):
                seen_type.add(line.split()[2])
            elif not line.startswith("#"):
                name = re.split(r"[{ ]", line, 1)[0]
                family = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen_type or family in seen_type

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("weird_total", 1.0, (("why", 'a"b\\c\nd'),))
        text = prometheus_text(registry)
        assert 'why="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_exports_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestSummary:
    def test_summary_contains_headline_and_ledger(self):
        observation, outcome = _observed_gather()
        text = summary(observation)
        assert "== observability summary ==" in text
        assert "per-superstep ledger (simulated vs predicted)" in text
        assert "divergence (sim/pred)" in text

    def test_row_overflow_is_reported_not_silent(self):
        with observe() as observation:
            for seed in range(3):
                observation.ingest_outcome(run_gather(ucf_testbed(2), 128, seed=seed))
        text = summary(observation, max_rows=1)
        assert "2 more superstep row(s)" in text


class TestCliWiring:
    def test_run_writes_both_files(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        code = main([
            "run", "gather", "testbed:4", "--n", "512",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--obs-summary",
        ])
        assert code == 0
        assert json.loads(trace_path.read_text())["traceEvents"]
        assert "repro_runs_total 1.0" in metrics_path.read_text()
        assert "== observability summary ==" in capsys.readouterr().out

    def test_flags_off_writes_nothing(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["run", "gather", "testbed:4", "--n", "512"]) == 0
        assert list(tmp_path.iterdir()) == []
        assert "observability" not in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_experiment_aliases_point_at_real_experiments(self):
        from repro.experiments.runner import EXPERIMENT_ALIASES, EXPERIMENTS

        for alias, target in EXPERIMENT_ALIASES.items():
            assert target in EXPERIMENTS
            assert alias not in EXPERIMENTS
        assert EXPERIMENT_ALIASES["fig3_gather"] == "fig3a"

    def test_unknown_experiment_error_still_raised_for_aliases(self):
        from repro.errors import ExperimentError
        from repro.experiments import run_experiment

        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig9_nonsense")
