"""Warm-cache observability: cached results still feed metrics/ledgers.

The disk cache stores the compact RunObs record alongside each result
(schema v2), so a fully-warm sweep must export byte-identical metrics
and summaries to the cold run that populated it — satisfying the same
identity contract the rendered reports already honour.
"""

from __future__ import annotations

import json

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy
from repro.obs import observe, prometheus_text, summary
from repro.perf import CACHE_SCHEMA_VERSION, DiskCache, SimJob, SweepExecutor


def _batch():
    return [
        SimJob.collective(
            "gather", ucf_testbed(p), n, root=RootPolicy.FASTEST, seed=0
        )
        for p in (2, 3)
        for n in (500, 1000)
    ]


def _export_through(executor: SweepExecutor) -> tuple[str, str, int]:
    with observe() as observation:
        executor.evaluate(_batch())
    return (
        prometheus_text(observation.metrics),
        summary(observation),
        executor.disk_hits,
    )


class TestWarmCacheObservability:
    def test_cold_and_warm_exports_are_byte_identical(self, tmp_path):
        cold_prom, cold_summary, cold_hits = _export_through(
            SweepExecutor(jobs=1, cache_dir=tmp_path)
        )
        warm_prom, warm_summary, warm_hits = _export_through(
            SweepExecutor(jobs=1, cache_dir=tmp_path)
        )
        assert cold_hits == 0
        assert warm_hits == len(_batch())  # fully warm: nothing simulated
        assert warm_prom == cold_prom
        assert warm_summary == cold_summary

    def test_cached_entries_carry_the_obs_record(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        executor.evaluate(_batch()[:1])
        (entry,) = list(DiskCache(tmp_path).dir.glob("*/*.json"))
        data = json.loads(entry.read_text())
        assert data["obs"] is not None
        assert data["obs"]["machines"]
        assert data["obs"]["marks"]

    def test_v1_entries_without_obs_miss_cleanly(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        # A pre-obs (schema v1) payload in the current version dir: the
        # missing "obs" key must read as a miss, never as a crash.
        cache._path(key).parent.mkdir(parents=True)
        cache._path(key).write_text(json.dumps({
            "name": "gather", "time": 1.0,
            "predicted_time": 1.0, "supersteps": 1,
        }))
        assert cache.get(key) is None

    def test_schema_version_is_bumped_past_v1(self):
        assert CACHE_SCHEMA_VERSION >= 2
