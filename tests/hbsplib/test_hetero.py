"""Unit tests for repro.hbsplib.hetero."""

import pytest

from repro.errors import PartitionError, ValidationError
from repro.hbsplib import equal_partition, proportional_partition


class TestEqualPartition:
    def test_divisible(self):
        assert equal_partition(100, 4) == [25, 25, 25, 25]

    def test_remainder_goes_to_first(self):
        assert equal_partition(10, 4) == [3, 3, 2, 2]

    def test_conserves_n(self):
        for n in (0, 1, 7, 1000, 25601):
            for p in (1, 2, 9):
                assert sum(equal_partition(n, p)) == n

    def test_within_one(self):
        counts = equal_partition(25601, 7)
        assert max(counts) - min(counts) <= 1

    def test_zero_items(self):
        assert equal_partition(0, 3) == [0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            equal_partition(-1, 3)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValidationError):
            equal_partition(10, 0)


class TestProportionalPartition:
    def test_matches_fractions(self):
        counts = proportional_partition(100, [0.5, 0.3, 0.2])
        assert counts == [50, 30, 20]

    def test_conserves_n(self):
        fractions = [0.123, 0.456, 0.421]
        assert sum(proportional_partition(999, fractions)) == 999

    def test_within_one_of_ideal(self):
        fractions = [1 / 3, 1 / 3, 1 / 3]
        counts = proportional_partition(1000, fractions)
        for count, fraction in zip(counts, fractions):
            assert abs(count - 1000 * fraction) < 1.0

    def test_bad_sum_rejected(self):
        with pytest.raises(PartitionError):
            proportional_partition(10, [0.5, 0.4])

    def test_order_preserved(self):
        counts = proportional_partition(100, [0.1, 0.7, 0.2])
        assert counts[1] == max(counts)
