"""Tests for the one-sided (DRMA) operations: put/get on registers."""

import numpy as np
import pytest

from repro.errors import SuperstepError
from repro.hbsplib import HbspRuntime


class TestPut:
    def test_whole_value_put(self, testbed_small):
        def prog(ctx):
            ctx.register("x", "initial")
            if ctx.pid == 1:
                yield from ctx.put(0, "x", "from-1")
            yield from ctx.sync()
            return ctx.register_value("x")

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == "from-1"
        assert result.values[2] == "initial"

    def test_offset_put_into_array(self, testbed_small):
        def prog(ctx):
            ctx.register("x", np.zeros(4, dtype=np.int64))
            yield from ctx.put(0, "x", np.array([ctx.pid + 10]), offset=ctx.pid)
            yield from ctx.sync()
            if ctx.pid == 0:
                return list(ctx.register_value("x"))
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == [10, 11, 12, 13]

    def test_put_is_buffered_on_source(self, testbed_small):
        """Mutating the array after put must not change what arrives."""

        def prog(ctx):
            ctx.register("x", np.zeros(2, dtype=np.int64))
            if ctx.pid == 1:
                payload = np.array([7, 7], dtype=np.int64)
                yield from ctx.put(0, "x", payload)
                payload[:] = 99  # too late: the value was captured
            yield from ctx.sync()
            if ctx.pid == 0:
                return list(ctx.register_value("x"))
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == [7, 7]

    def test_put_invisible_before_sync(self, testbed_small):
        def prog(ctx):
            ctx.register("x", 0)
            if ctx.pid == 1:
                yield from ctx.put(0, "x", 5)
            before = ctx.register_value("x")
            yield from ctx.sync()
            return (before, ctx.register_value("x"))

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (0, 5)

    def test_put_to_unregistered_fails(self, testbed_small):
        def prog(ctx):
            if ctx.pid != 0:
                ctx.register("x", 0)  # pid 0 forgets to register
            if ctx.pid == 1:
                yield from ctx.put(0, "x", 5)
            yield from ctx.sync()

        with pytest.raises(SuperstepError, match="unregistered"):
            HbspRuntime(testbed_small).run(prog)

    def test_oversized_offset_put_fails(self, testbed_small):
        def prog(ctx):
            ctx.register("x", np.zeros(2, dtype=np.int64))
            if ctx.pid == 1:
                yield from ctx.put(0, "x", np.arange(5), offset=0)
            yield from ctx.sync()

        with pytest.raises(SuperstepError, match="overflows"):
            HbspRuntime(testbed_small).run(prog)

    def test_put_charges_communication_time(self, testbed_small):
        def quiet(ctx):
            ctx.register("x", np.zeros(100_000, dtype=np.int64))
            yield from ctx.sync()

        def chatty(ctx):
            ctx.register("x", np.zeros(100_000, dtype=np.int64))
            if ctx.pid == 1:
                yield from ctx.put(0, "x", np.ones(100_000, dtype=np.int64))
            yield from ctx.sync()

        t_quiet = HbspRuntime(testbed_small).run(quiet).time
        t_chatty = HbspRuntime(testbed_small).run(chatty).time
        assert t_chatty > t_quiet * 2


class TestGet:
    def test_get_whole_value(self, testbed_small):
        def prog(ctx):
            ctx.register("x", ctx.pid * 100)
            handle = yield from ctx.get((ctx.pid + 1) % ctx.nprocs, "x")
            yield from ctx.sync(drma=True)
            return handle.value

        result = HbspRuntime(testbed_small).run(prog)
        for pid, value in result.values.items():
            assert value == ((pid + 1) % 4) * 100

    def test_get_slice(self, testbed_small):
        def prog(ctx):
            ctx.register("x", np.arange(10, dtype=np.int64) + ctx.pid)
            handle = yield from ctx.get(0, "x", offset=2, length=3)
            yield from ctx.sync(drma=True)
            return list(handle.value)

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[3] == [2, 3, 4]

    def test_get_sees_end_of_superstep_value(self, testbed_small):
        """The owner's final write of the superstep is what a get sees."""

        def prog(ctx):
            ctx.register("x", "early")
            if ctx.pid == 0:
                handle = yield from ctx.get(1, "x")
            if ctx.pid == 1:
                ctx._registers["x"] = "late"  # owner updates before sync
            yield from ctx.sync(drma=True)
            return handle.value if ctx.pid == 0 else None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == "late"

    def test_get_returns_copy(self, testbed_small):
        def prog(ctx):
            ctx.register("x", np.zeros(3, dtype=np.int64))
            handle = yield from ctx.get(1, "x")
            yield from ctx.sync(drma=True)
            if ctx.pid == 0:
                handle.value[:] = 42  # mutating the copy...
            yield from ctx.sync()
            return list(ctx.register_value("x"))

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[1] == [0, 0, 0]  # ...never touches the owner

    def test_handle_not_ready_before_sync(self, testbed_small):
        def prog(ctx):
            ctx.register("x", 1)
            handle = yield from ctx.get(1, "x")
            ready_before = handle.ready
            yield from ctx.sync(drma=True)
            return (ready_before, handle.ready)

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (False, True)

    def test_reading_unready_handle_raises(self, testbed_small):
        from repro.hbsplib import GetHandle

        handle = GetHandle()
        with pytest.raises(SuperstepError, match="before the servicing"):
            _ = handle.value

    def test_drma_sync_charges_extra_barrier(self, testbed_small):
        def plain(ctx):
            yield from ctx.sync()

        def with_drma(ctx):
            ctx.register("x", 1)
            yield from ctx.sync(drma=True)

        t_plain = HbspRuntime(testbed_small).run(plain).time
        t_drma = HbspRuntime(testbed_small).run(with_drma).time
        assert t_drma == pytest.approx(2 * t_plain, rel=0.05)


class TestRegisters:
    def test_register_lifecycle(self, testbed_small):
        def prog(ctx):
            ctx.register("x", 1)
            assert ctx.register_value("x") == 1
            ctx.deregister("x")
            try:
                ctx.register_value("x")
            except SuperstepError:
                ok = True
            else:
                ok = False
            yield from ctx.sync()
            return ok

        result = HbspRuntime(testbed_small).run(prog)
        assert all(result.values.values())

    def test_deregister_unknown_raises(self, testbed_small):
        def prog(ctx):
            ctx.deregister("ghost")
            yield from ctx.sync()

        with pytest.raises(SuperstepError, match="not registered"):
            HbspRuntime(testbed_small).run(prog)

    def test_puts_and_messages_coexist(self, testbed_small):
        """DRMA traffic never leaks into the user message queue."""

        def prog(ctx):
            ctx.register("x", 0)
            if ctx.pid == 1:
                yield from ctx.put(0, "x", 5)
                yield from ctx.send(0, "normal")
            yield from ctx.sync()
            if ctx.pid == 0:
                return (
                    [m.payload for m in ctx.messages()],
                    ctx.register_value("x"),
                )
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (["normal"], 5)
