"""Unit tests for repro.hbsplib.context — BSP semantics."""

import numpy as np
import pytest

from repro.errors import SuperstepError
from repro.hbsplib import HbspRuntime


class TestBspDeliverySemantics:
    def test_message_not_visible_before_sync(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 1:
                yield from ctx.send(0, "hello")
            before = len(ctx.peek_messages())
            yield from ctx.sync()
            after = len(ctx.messages())
            return (before, after)

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (0, 1)

    def test_all_sends_arrive_after_one_sync(self, testbed_small):
        def prog(ctx):
            if ctx.pid != 0:
                yield from ctx.send(0, ctx.pid)
            yield from ctx.sync()
            if ctx.pid == 0:
                return sorted(m.payload for m in ctx.messages())
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == [1, 2, 3]

    def test_superstep_isolation(self, testbed_small):
        """Messages from superstep 2 are not mixed into superstep 1."""

        def prog(ctx):
            if ctx.pid == 1:
                yield from ctx.send(0, "step1")
            yield from ctx.sync()
            got_first = [m.payload for m in ctx.messages()] if ctx.pid == 0 else []
            if ctx.pid == 2:
                yield from ctx.send(0, "step2")
            yield from ctx.sync()
            got_second = [m.payload for m in ctx.messages()] if ctx.pid == 0 else []
            return (got_first, got_second)

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (["step1"], ["step2"])

    def test_messages_filter_by_source_pid(self, testbed_small):
        def prog(ctx):
            if ctx.pid in (1, 2):
                yield from ctx.send(0, f"from{ctx.pid}")
            yield from ctx.sync()
            if ctx.pid == 0:
                only_1 = [m.payload for m in ctx.messages(source=1)]
                rest = [m.payload for m in ctx.messages()]
                return (only_1, rest)
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == (["from1"], ["from2"])

    def test_messages_filter_by_tag(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 1:
                yield from ctx.send(0, "a", tag=10)
                yield from ctx.send(0, "b", tag=20)
            yield from ctx.sync()
            if ctx.pid == 0:
                return [m.payload for m in ctx.messages(tag=20)]
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == ["b"]

    def test_untaken_messages_stay_queued(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 1:
                yield from ctx.send(0, "keep", tag=5)
            yield from ctx.sync()
            if ctx.pid == 0:
                ctx.messages(tag=99)  # takes nothing
                return [m.payload for m in ctx.peek_messages()]
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == ["keep"]

    def test_send_outside_group_rejected(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 0:
                yield from ctx.send(99, "x")
            yield from ctx.sync()

        with pytest.raises(SuperstepError, match="outside"):
            HbspRuntime(testbed_small).run(prog)

    def test_pid_of_message(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 2:
                yield from ctx.send(0, "x")
            yield from ctx.sync()
            if ctx.pid == 0:
                message = ctx.messages()[0]
                return ctx.pid_of_message(message)
            return None

        result = HbspRuntime(testbed_small).run(prog)
        assert result.values[0] == 2


class TestClusterScopedSync:
    def test_level1_sync_is_cluster_local(self, fig1_machine):
        """A level-1 sync only involves the proc's own cluster, so
        messages inside one cluster are exchanged without the campus
        barrier cost."""

        def prog(ctx):
            coord = ctx.coordinator_pid(1)
            if ctx.pid != coord:
                yield from ctx.send(coord, ctx.pid)
            yield from ctx.sync(level=1)
            count = len(ctx.messages()) if ctx.pid == coord else 0
            yield from ctx.sync()  # global, so everyone finishes together
            return count

        runtime = HbspRuntime(fig1_machine)
        result = runtime.run(prog)
        # SMP coordinator got 3, LAN coordinator got 3, SGI got 0.
        counts = sorted(result.values.values())
        assert counts == [0, 0, 0, 0, 0, 0, 0, 3, 3]

    def test_global_sync_charges_root_L(self, fig1_machine):
        def just_sync(ctx):
            yield from ctx.sync()

        runtime = HbspRuntime(fig1_machine)
        L_root = runtime.params.L_of(2, 0)
        result = runtime.run(just_sync)
        assert result.time >= L_root

    def test_level1_sync_cheaper_than_global(self, fig1_machine):
        def sync_level1(ctx):
            yield from ctx.sync(level=1)

        def sync_global(ctx):
            yield from ctx.sync()

        t1 = HbspRuntime(fig1_machine).run(sync_level1).time
        t2 = HbspRuntime(fig1_machine).run(sync_global).time
        assert t1 < t2


class TestEnquiry:
    def test_pid_nprocs_machine(self, testbed_small):
        def prog(ctx):
            yield from ctx.sync()
            return (ctx.pid, ctx.nprocs, ctx.machine_name)

        result = HbspRuntime(testbed_small).run(prog)
        for pid, (got_pid, nprocs, name) in result.values.items():
            assert got_pid == pid
            assert nprocs == 4
            assert name  # non-empty

    def test_time_advances(self, testbed_small):
        def prog(ctx):
            start = ctx.time
            yield from ctx.compute(10_000)
            return ctx.time - start

        result = HbspRuntime(testbed_small).run(prog)
        assert all(delta > 0 for delta in result.values.values())

    def test_hetero_enquiry(self, testbed_small):
        def prog(ctx):
            yield from ctx.sync()
            return (
                ctx.fastest_pid,
                ctx.slowest_pid,
                ctx.rank_of(),
                ctx.fraction_of(),
                sum(ctx.partition(100)),
            )

        runtime = HbspRuntime(testbed_small)
        result = runtime.run(prog)
        for pid, (fast, slow, rank, fraction, total) in result.values.items():
            assert fast == runtime.fastest_pid
            assert slow == runtime.slowest_pid
            assert rank == runtime.rank_of(pid)
            assert 0 < fraction < 1
            assert total == 100

    def test_is_coordinator(self, fig1_machine):
        def prog(ctx):
            yield from ctx.sync()
            return ctx.is_coordinator(1)

        runtime = HbspRuntime(fig1_machine)
        result = runtime.run(prog)
        assert sum(result.values.values()) == 3  # one coordinator per level-1 node

    def test_context_dead_after_program(self, testbed_small):
        contexts = []

        def prog(ctx):
            contexts.append(ctx)
            yield from ctx.sync()

        HbspRuntime(testbed_small).run(prog)
        with pytest.raises(SuperstepError, match="finished"):
            list(contexts[0].compute(1))
