"""Unit tests for repro.hbsplib.runtime."""

import pytest

from repro.bytemark import simulate_scores
from repro.errors import HbspError
from repro.hbsplib import HbspRuntime


def noop(ctx):
    yield from ctx.sync()
    return ctx.pid


class TestConstruction:
    def test_nprocs(self, testbed_small):
        assert HbspRuntime(testbed_small).nprocs == 4

    def test_pids_match_machine_order(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        result = runtime.run(noop)
        assert sorted(result.values) == list(range(4))
        assert all(result.values[pid] == pid for pid in result.values)

    def test_fastest_slowest_from_scores(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        assert runtime.topology.machines[runtime.fastest_pid].name == "sgi-octane"
        assert runtime.topology.machines[runtime.slowest_pid].name == "sun-classic"

    def test_scores_override_ranking(self, testbed_small):
        """Noisy scores can rank a truly-slower machine first."""
        inverted = {
            m.name: 1.0 / m.cpu_rate for m in testbed_small.machines
        }
        runtime = HbspRuntime(testbed_small, scores=inverted)
        assert runtime.topology.machines[runtime.fastest_pid].name == "sun-classic"

    def test_missing_scores_rejected(self, testbed_small):
        with pytest.raises(HbspError, match="missing"):
            HbspRuntime(testbed_small, scores={"sgi-octane": 1.0})

    def test_ranks_are_permutation(self, testbed):
        runtime = HbspRuntime(testbed)
        ranks = sorted(runtime.rank_of(pid) for pid in range(runtime.nprocs))
        assert ranks == list(range(runtime.nprocs))

    def test_fractions_sum_to_one(self, testbed):
        runtime = HbspRuntime(testbed)
        assert sum(runtime.fraction_of(j) for j in range(runtime.nprocs)) == pytest.approx(1.0)

    def test_partition_modes(self, testbed):
        runtime = HbspRuntime(testbed)
        balanced = runtime.partition(1000, balanced=True)
        equal = runtime.partition(1000, balanced=False)
        assert sum(balanced) == sum(equal) == 1000
        assert max(equal) - min(equal) <= 1
        assert max(balanced) - min(balanced) > 1  # heterogeneous shares


class TestClusterNavigation:
    def test_coordinator_pid_level0_is_self(self, fig1_machine):
        runtime = HbspRuntime(fig1_machine)
        assert runtime.coordinator_pid(3, 0) == 3

    def test_cluster_members_level1(self, fig1_machine):
        runtime = HbspRuntime(fig1_machine)
        smp0 = runtime.topology.machine_id("smp-cpu0")
        members = runtime.cluster_members(smp0, 1)
        names = {runtime.topology.machines[m].name for m in members}
        assert names == {f"smp-cpu{i}" for i in range(4)}

    def test_root_cluster_contains_everyone(self, fig1_machine):
        runtime = HbspRuntime(fig1_machine)
        assert len(runtime.cluster_members(0, 2)) == runtime.nprocs

    def test_coordinator_of_root_is_global_fastest(self, fig1_machine):
        runtime = HbspRuntime(fig1_machine)
        coord = runtime.coordinator_pid(0, 2)
        assert runtime.topology.machines[coord].name == "sgi-octane"

    def test_barrier_for_bad_level(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        with pytest.raises(HbspError):
            runtime.barrier_for(0, 5)
        with pytest.raises(HbspError):
            runtime.barrier_for(0, 0)


class TestExecution:
    def test_single_use(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        runtime.run(noop)
        with pytest.raises(HbspError, match="fresh"):
            runtime.run(noop)

    def test_per_pid_args(self, testbed_small):
        def prog(ctx, value):
            yield from ctx.sync()
            return value

        runtime = HbspRuntime(testbed_small)
        result = runtime.run(prog, per_pid_args=[(i * 10,) for i in range(4)])
        assert result.values == {0: 0, 1: 10, 2: 20, 3: 30}

    def test_per_pid_args_length_checked(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        with pytest.raises(HbspError):
            runtime.run(noop, per_pid_args=[()])

    def test_supersteps_counted(self, testbed_small):
        def prog(ctx):
            yield from ctx.sync()
            yield from ctx.sync()
            yield from ctx.sync()

        result = HbspRuntime(testbed_small).run(prog)
        assert result.supersteps == 3

    def test_sync_charges_L(self, testbed_small):
        def prog(ctx):
            yield from ctx.sync()

        result = HbspRuntime(testbed_small).run(prog)
        runtime_params = HbspRuntime(testbed_small).params
        assert result.time >= runtime_params.L_of(1, 0)

    def test_time_is_makespan(self, testbed_small):
        def prog(ctx):
            if ctx.pid == 0:
                yield from ctx.compute(ctx.task.host.spec.cpu_rate)  # 1 s
            yield from ctx.sync()

        result = HbspRuntime(testbed_small).run(prog)
        assert result.time >= 1.0

    def test_trace_enabled(self, testbed_small):
        def prog(ctx):
            yield from ctx.compute(1000)
            yield from ctx.sync()

        result = HbspRuntime(testbed_small, trace=True).run(prog)
        assert len(result.trace) > 0
