"""Unit tests for declarative fault plans and their serialisation."""

import math

import pytest

from repro.cluster import ucf_testbed
from repro.errors import FaultPlanError
from repro.faults import (
    BackgroundLoad,
    FaultPlan,
    LinkDegradation,
    MachinePause,
    MachineSlowdown,
    MessageFaults,
    congestion_plan,
    flaky_network_plan,
    straggler_plan,
)

ALL_KINDS = [
    MachineSlowdown("m0", factor=4.0, start=1.0, duration=2.0),
    MachinePause("m0", start=0.5, duration=0.25),
    LinkDegradation("lan", gap_factor=3.0, extra_latency=2e-3),
    MessageFaults("lan", drop_prob=0.02, delay_prob=0.05, delay_mean=1e-3),
    BackgroundLoad("m0", intensity=0.5, start=0.0, duration=1.0),
]


class TestSpecs:
    def test_slowdown_validation(self):
        with pytest.raises(FaultPlanError):
            MachineSlowdown("m", factor=0.0)
        with pytest.raises(FaultPlanError):
            MachineSlowdown("m", factor=2.0, start=-1.0)
        with pytest.raises(FaultPlanError):
            MachineSlowdown("m", factor=2.0, duration=0.0)

    def test_pause_requires_finite_duration(self):
        with pytest.raises(TypeError):
            MachinePause("m", start=0.0)  # duration is mandatory
        assert MachinePause("m", start=0.0, duration=1.0).end == 1.0

    def test_link_degradation_validation(self):
        with pytest.raises(FaultPlanError):
            LinkDegradation("lan", gap_factor=0.5)
        with pytest.raises(FaultPlanError):
            LinkDegradation("lan", extra_latency=-1.0)

    def test_message_faults_validation(self):
        with pytest.raises(FaultPlanError):
            MessageFaults(drop_prob=1.5)
        with pytest.raises(FaultPlanError):
            MessageFaults(delay_prob=0.5)  # needs delay_mean > 0
        assert MessageFaults(drop_prob=1.0).end == math.inf

    def test_background_load_validation(self):
        with pytest.raises(FaultPlanError):
            BackgroundLoad("m", intensity=0.0, start=0.0, duration=1.0)
        with pytest.raises(FaultPlanError):
            BackgroundLoad("m", intensity=1.0, start=0.0, duration=1.0)
        with pytest.raises(FaultPlanError):
            BackgroundLoad("m", intensity=0.5, start=0.0, duration=1.0, burst_mean=0)

    def test_open_ended_end_is_inf(self):
        assert MachineSlowdown("m", factor=2.0).end == math.inf
        assert MachineSlowdown("m", factor=2.0, start=1.0, duration=2.0).end == 3.0


class TestFaultPlan:
    def test_empty(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert len(plan) == 0
        assert list(plan) == []

    def test_bare_spec_is_wrapped(self):
        spec = MachineSlowdown("m", factor=2.0)
        assert list(FaultPlan(spec)) == [spec]

    def test_rejects_non_specs(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(["not a fault"])

    def test_extended(self):
        plan = FaultPlan.empty().extended(*ALL_KINDS)
        assert len(plan) == len(ALL_KINDS)
        assert FaultPlan.empty().extended(ALL_KINDS[0]).faults == (ALL_KINDS[0],)

    def test_validate_against_topology(self):
        topology = ucf_testbed(4)
        machine = topology.machines[0].name
        network = topology.clusters[0].network.name
        FaultPlan([
            MachineSlowdown(machine, factor=2.0),
            LinkDegradation(network, gap_factor=2.0),
            MessageFaults(None, drop_prob=0.5),
        ]).validate(topology)
        with pytest.raises(FaultPlanError, match="unknown machine"):
            straggler_plan("nope").validate(topology)
        with pytest.raises(FaultPlanError, match="unknown network"):
            congestion_plan("nope").validate(topology)

    def test_json_roundtrip_all_kinds(self):
        plan = FaultPlan(ALL_KINDS)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = flaky_network_plan(drop_prob=0.1)
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(str(tmp_path / "missing.json"))

    def test_bad_documents(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match='"faults"'):
            FaultPlan.from_dict({})
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_dict({"faults": [{"kind": "gremlin"}]})
        with pytest.raises(FaultPlanError, match="bad machine_slowdown"):
            FaultPlan.from_dict({"faults": [{"kind": "machine_slowdown"}]})


class TestBuilders:
    def test_straggler(self):
        (fault,) = straggler_plan("m1", factor=5.0, duration=2.0)
        assert isinstance(fault, MachineSlowdown)
        assert fault.machine == "m1" and fault.factor == 5.0 and fault.end == 2.0

    def test_congestion(self):
        (fault,) = congestion_plan("lan", gap_factor=2.5, extra_latency=1e-3)
        assert isinstance(fault, LinkDegradation)
        assert fault.gap_factor == 2.5 and fault.extra_latency == 1e-3

    def test_flaky(self):
        (fault,) = flaky_network_plan(drop_prob=0.1, delay_prob=0.2, delay_mean=1e-3)
        assert isinstance(fault, MessageFaults)
        assert fault.network is None and fault.drop_prob == 0.1
