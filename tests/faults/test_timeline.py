"""Unit tests for piecewise-constant slowdown timelines."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FaultPlanError
from repro.faults import Timeline, Window


class TestWindow:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            Window(-1.0, 2.0, 2.0)
        with pytest.raises(FaultPlanError):
            Window(2.0, 2.0, 2.0)  # end must be > start
        with pytest.raises(FaultPlanError):
            Window(0.0, 1.0, 0.0)  # factor must be > 0
        with pytest.raises(FaultPlanError):
            Window(0.0, math.inf, math.inf)  # endless pause

    def test_active_at_half_open(self):
        window = Window(1.0, 2.0, 3.0)
        assert not window.active_at(0.5)
        assert window.active_at(1.0)
        assert window.active_at(1.999)
        assert not window.active_at(2.0)

    def test_permanent_window_allowed(self):
        assert Window(0.0, math.inf, 2.0).active_at(1e9)


class TestStretch:
    def test_empty_timeline_is_bit_identity(self):
        timeline = Timeline()
        for nominal in (0.0, 1e-9, 0.1234567891234, 7.25):
            assert timeline.stretch(3.0, nominal) == nominal

    def test_outside_windows_unchanged(self):
        timeline = Timeline([Window(10.0, 20.0, 4.0)])
        assert timeline.stretch(0.0, 5.0) == 5.0
        assert timeline.stretch(20.0, 5.0) == 5.0

    def test_fully_inside_window(self):
        timeline = Timeline([Window(0.0, 100.0, 4.0)])
        assert timeline.stretch(1.0, 2.0) == pytest.approx(8.0)

    def test_crossing_into_window(self):
        # 1s of work at t=9: 1s nominal splits into 1s plain + none,
        # but only 1s fits before t=10... actually 1s of the work runs
        # [9, 10) at factor 1 leaving 0 -> exactly 1.0.
        timeline = Timeline([Window(10.0, 20.0, 2.0)])
        assert timeline.stretch(9.0, 1.0) == pytest.approx(1.0)
        # 2s of work at t=9: 1s plain, then 1s remaining at factor 2.
        assert timeline.stretch(9.0, 2.0) == pytest.approx(3.0)

    def test_crossing_out_of_window(self):
        timeline = Timeline([Window(0.0, 10.0, 2.0)])
        # 6s of work at t=0: [0, 10) covers 5s of progress, the last
        # second finishes at full speed after the window.
        assert timeline.stretch(0.0, 6.0) == pytest.approx(11.0)

    def test_pause_window(self):
        timeline = Timeline([Window(5.0, 8.0, math.inf)])
        # Work starting inside the pause waits for the restart.
        assert timeline.stretch(6.0, 1.0) == pytest.approx(3.0)
        # Work crossing into the pause stalls for its full length.
        assert timeline.stretch(4.0, 2.0) == pytest.approx(5.0)

    def test_overlapping_windows_multiply(self):
        timeline = Timeline([Window(0.0, 10.0, 2.0), Window(0.0, 10.0, 3.0)])
        assert timeline.factor_at(1.0) == pytest.approx(6.0)
        assert timeline.stretch(0.0, 1.0) == pytest.approx(6.0)

    def test_permanent_degradation(self):
        timeline = Timeline([Window(2.0, math.inf, 3.0)])
        assert timeline.stretch(5.0, 4.0) == pytest.approx(12.0)

    @given(
        start=st.floats(min_value=0, max_value=50),
        nominal=st.floats(min_value=0, max_value=10),
        w_start=st.floats(min_value=0, max_value=50),
        w_len=st.floats(min_value=0.1, max_value=50),
        factor=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_slowdowns_never_speed_up(self, start, nominal, w_start, w_len, factor):
        timeline = Timeline([Window(w_start, w_start + w_len, factor)])
        actual = timeline.stretch(start, nominal)
        assert actual >= nominal - 1e-12

    @given(
        start=st.floats(min_value=0, max_value=20),
        a=st.floats(min_value=0, max_value=5),
        b=st.floats(min_value=0, max_value=5),
    )
    def test_monotone_in_nominal(self, start, a, b):
        timeline = Timeline([Window(1.0, 4.0, 3.0), Window(2.0, 6.0, 2.0)])
        lo, hi = sorted((a, b))
        assert timeline.stretch(start, lo) <= timeline.stretch(start, hi) + 1e-12
