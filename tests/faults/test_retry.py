"""Delivery-guarantee tests: timeouts, retries, and at-most-once drops."""

import pytest

from repro.cluster import ucf_testbed
from repro.errors import TimeoutError, ValidationError
from repro.faults import DeliveryPolicy, FaultPlan, Injector, MessageFaults
from repro.pvm import Message, VirtualMachine


def make_vm(plan=None, *, seed=0, delivery=None):
    injector = Injector(plan, seed=seed) if plan is not None else None
    return VirtualMachine(ucf_testbed(2), injector=injector, delivery=delivery)


def sender(task, dst, policy=None):
    done = yield from task.send(dst, b"x" * 100, policy=policy)
    try:
        message = yield done
    except TimeoutError as error:
        return ("timeout", error.attempts)
    return ("delivered", message)


def receiver(task):
    message = yield from task.recv()
    return message


def quiet_receiver(task):
    # A receiver that doesn't insist on a message (at-most-once tests).
    yield task.sleep(0.0)


class TestDeliveryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            DeliveryPolicy(retries=2)  # retries need a timeout
        with pytest.raises(ValidationError):
            DeliveryPolicy(timeout=0.0)
        with pytest.raises(ValidationError):
            DeliveryPolicy(timeout=1.0, retries=-1)
        with pytest.raises(ValidationError):
            DeliveryPolicy(timeout=1.0, retries=1, backoff_factor=0.5)

    def test_at_most_once_is_unarmed(self):
        policy = DeliveryPolicy.at_most_once()
        assert not policy.armed
        assert policy.max_attempts == 1

    def test_retry_policy(self):
        policy = DeliveryPolicy.retry(3, timeout=0.5)
        assert policy.armed
        assert policy.max_attempts == 4
        # backoff defaults to the timeout, doubling per retry
        assert policy.backoff_for(0) == pytest.approx(0.5)
        assert policy.backoff_for(2) == pytest.approx(2.0)

    def test_explicit_backoff_base(self):
        policy = DeliveryPolicy.retry(2, timeout=1.0, backoff_base=0.1,
                                      backoff_factor=3.0)
        assert policy.backoff_for(0) == pytest.approx(0.1)
        assert policy.backoff_for(1) == pytest.approx(0.3)


class TestFaultFreeDelivery:
    def test_plain_send_recv(self):
        vm = make_vm()
        rx = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, rx.tid)
        vm.run()
        message = rx.process.value
        assert isinstance(message, Message) and message.nbytes == 100

    def test_armed_policy_without_faults_still_delivers(self):
        vm = make_vm(delivery=DeliveryPolicy.retry(2, timeout=10.0))
        rx = vm.spawn(receiver, 1)
        tx = vm.spawn(sender, 0, rx.tid)
        time = vm.run()
        status, message = tx.process.value
        assert status == "delivered"
        assert message.uid is not None
        # The generous un-expired timer must not stretch the makespan.
        assert time < 1.0


class TestAtMostOnce:
    def test_drop_resolves_event_with_none(self):
        vm = make_vm(FaultPlan(MessageFaults(drop_prob=1.0)))
        rx = vm.spawn(quiet_receiver, 1)
        tx = vm.spawn(sender, 0, rx.tid)
        vm.run()
        status, message = tx.process.value
        assert status == "delivered" and message is None
        assert vm.injector.dropped_messages == 1


class TestRetry:
    def test_retry_survives_certain_drop_window(self):
        # Every message in the first 10 ms is dropped; the retransmit
        # after the timeout lands.
        plan = FaultPlan(MessageFaults(drop_prob=1.0, duration=0.010))
        policy = DeliveryPolicy.retry(3, timeout=0.012)
        vm = make_vm(plan, delivery=policy)
        rx = vm.spawn(receiver, 1)
        tx = vm.spawn(sender, 0, rx.tid)
        vm.run()
        status, message = tx.process.value
        assert status == "delivered"
        assert rx.process.value.payload == message.payload
        assert vm.injector.dropped_messages >= 1

    def test_exhausted_retries_raise_timeout_error(self):
        plan = FaultPlan(MessageFaults(drop_prob=1.0))
        policy = DeliveryPolicy.retry(2, timeout=0.01)
        vm = make_vm(plan, delivery=policy)
        rx = vm.spawn(quiet_receiver, 1)
        tx = vm.spawn(sender, 0, rx.tid)
        vm.run()
        status, attempts = tx.process.value
        assert status == "timeout" and attempts == 3
        assert vm.injector.dropped_messages == 3

    def test_late_original_beats_retransmit(self):
        # The original is merely delayed past the timeout; the monitor
        # must notice its late arrival instead of timing out.
        plan = FaultPlan(MessageFaults(delay_prob=1.0, delay_mean=0.05))
        policy = DeliveryPolicy.retry(5, timeout=0.002)
        vm = make_vm(plan, seed=3, delivery=policy)
        rx = vm.spawn(receiver, 1)
        tx = vm.spawn(sender, 0, rx.tid)
        vm.run()
        status, _message = tx.process.value
        assert status == "delivered"

    def test_duplicates_suppressed_at_receiver(self):
        # Heavy delays force retransmits; several attempts may land but
        # the receiver must consume exactly one copy.
        plan = FaultPlan(MessageFaults(delay_prob=1.0, delay_mean=0.05))
        policy = DeliveryPolicy.retry(5, timeout=0.002)
        vm = make_vm(plan, seed=3, delivery=policy)
        rx = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, rx.tid)
        vm.run()
        assert rx.received_messages == 1
        assert len(rx.mailbox.peek_all()) == 0

    def test_retry_determinism(self):
        plan = FaultPlan(MessageFaults(drop_prob=0.5, delay_prob=0.5,
                                       delay_mean=0.01))
        policy = DeliveryPolicy.retry(4, timeout=0.005)
        times = set()
        for _ in range(2):
            vm = make_vm(plan, seed=11, delivery=policy)
            rx = vm.spawn(receiver, 1)
            vm.spawn(sender, 0, rx.tid)
            times.add(vm.run())
        assert len(times) == 1
