"""Integration tests: injected faults change simulated runs, deterministically."""

import pytest

from repro.cluster import ucf_testbed
from repro.collectives import run_broadcast, run_gather
from repro.errors import FaultError
from repro.faults import (
    BackgroundLoad,
    FaultPlan,
    Injector,
    MachinePause,
    congestion_plan,
    straggler_plan,
)

N = 2560  # 10 KB of int32 items: fast but non-trivial


@pytest.fixture
def topology():
    return ucf_testbed(4)


def root_machine(topology):
    """The fastest machine hosts the default root and stays busy all run."""
    return topology.machines[0].name


class TestAttachment:
    def test_injector_is_single_use(self, topology):
        injector = Injector(straggler_plan(root_machine(topology)), seed=0)
        run_gather(topology, N)  # unrelated run, fresh runtime
        from repro.hbsplib import HbspRuntime

        HbspRuntime(topology, injector=injector)
        with pytest.raises(FaultError, match="already attached"):
            HbspRuntime(topology, injector=injector)

    def test_plan_validated_at_attach(self, topology):
        with pytest.raises(FaultError):
            run_gather(topology, N, faults=straggler_plan("no-such-machine"))

    def test_fault_marks_traced(self, topology):
        outcome = run_gather(
            topology, N, trace=True,
            faults=straggler_plan(root_machine(topology), factor=2.0),
        )
        marks = [r for r in outcome.result.trace.records if r.category == "fault"]
        assert len(marks) == 1
        assert marks[0].detail["kind"] == "machine_slowdown"


class TestEffects:
    def test_straggler_slows_the_run(self, topology):
        base = run_gather(topology, N, seed=1).time
        slow = run_gather(
            topology, N, seed=1,
            faults=straggler_plan(root_machine(topology), factor=4.0),
        ).time
        assert slow > base

    def test_congestion_slows_the_run(self, topology):
        network = topology.clusters[0].network.name
        base = run_broadcast(topology, N, seed=1).time
        slow = run_broadcast(
            topology, N, seed=1,
            faults=congestion_plan(network, gap_factor=3.0, extra_latency=2e-3),
        ).time
        assert slow > base

    def test_pause_stalls_the_run(self, topology):
        base = run_gather(topology, N, seed=1).time
        paused = run_gather(
            topology, N, seed=1,
            faults=FaultPlan(MachinePause(root_machine(topology),
                                          start=base / 2, duration=base)),
        ).time
        # The root freezes mid-run for one whole baseline-makespan.
        assert paused > base

    def test_background_load_steals_cpu(self, topology):
        base = run_gather(topology, N, seed=1).time
        loaded = run_gather(
            topology, N, seed=1,
            faults=FaultPlan(BackgroundLoad(root_machine(topology), intensity=0.8,
                                            start=0.0, duration=10 * base,
                                            burst_mean=base / 5)),
        ).time
        assert loaded > base

    def test_hogs_do_not_inflate_makespan(self, topology):
        # The background window extends far beyond the program; the
        # makespan must stop with the tasks, not with the hog.
        base = run_gather(topology, N, seed=1).time
        loaded = run_gather(
            topology, N, seed=1,
            faults=FaultPlan(BackgroundLoad(root_machine(topology), intensity=0.5,
                                            start=0.0, duration=1000 * base,
                                            burst_mean=base / 5)),
        ).time
        assert loaded < 100 * base


class TestDeterminism:
    def test_same_seed_same_makespan(self, topology):
        plan = FaultPlan(BackgroundLoad(root_machine(topology), intensity=0.6,
                                        start=0.0, duration=1.0, burst_mean=1e-4))
        times = {
            run_gather(topology, N, seed=1, faults=plan, fault_seed=7).time
            for _ in range(3)
        }
        assert len(times) == 1

    def test_different_fault_seed_differs(self, topology):
        plan = FaultPlan(BackgroundLoad(root_machine(topology), intensity=0.6,
                                        start=0.0, duration=1.0, burst_mean=1e-4))
        a = run_gather(topology, N, seed=1, faults=plan, fault_seed=1).time
        b = run_gather(topology, N, seed=1, faults=plan, fault_seed=2).time
        assert a != b

    def test_fault_seed_defaults_to_seed(self, topology):
        plan = FaultPlan(BackgroundLoad(root_machine(topology), intensity=0.6,
                                        start=0.0, duration=1.0, burst_mean=1e-4))
        a = run_gather(topology, N, seed=5, faults=plan).time
        b = run_gather(topology, N, seed=5, faults=plan, fault_seed=5).time
        assert a == b
