"""Property test: FaultPlan JSON round-trips compile identically.

Generates plans mixing every event kind (seeded, via hypothesis) and
pins two things: ``loads(dumps(plan))`` reproduces the plan value for
value, and running the simulator against the round-tripped plan yields
a bit-identical injector timeline — same makespan, same stochastic
message fates — because the injector is a deterministic function of
``(plan, fault_seed)``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import two_lans
from repro.collectives import run_gather
from repro.faults import (
    BackgroundLoad,
    FaultPlan,
    LinkDegradation,
    MachinePause,
    MachineSlowdown,
    MessageFaults,
)

TOPOLOGY = two_lans()
MACHINES = [m.name for m in TOPOLOGY.machines]
NETWORKS = ["campus-atm", "ethernet-100"]

_starts = st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False)
_durations = st.floats(1e-3, 5.0, allow_nan=False, allow_infinity=False)

_slowdowns = st.builds(
    MachineSlowdown,
    machine=st.sampled_from(MACHINES),
    factor=st.floats(1.1, 16.0),
    start=_starts,
    duration=st.one_of(st.none(), _durations),
)
_pauses = st.builds(
    MachinePause,
    machine=st.sampled_from(MACHINES),
    start=_starts,
    duration=_durations,
)
_links = st.builds(
    LinkDegradation,
    network=st.sampled_from(NETWORKS),
    gap_factor=st.floats(1.0, 8.0),
    extra_latency=st.floats(0.0, 1e-2),
    start=_starts,
    duration=st.one_of(st.none(), _durations),
)
# Message faults stay drop-free: a dropped message without a retrying
# DeliveryPolicy stalls the collective, and this test pins timelines,
# not timeout handling (tests/faults/test_retry.py covers drops).
_messages = st.builds(
    MessageFaults,
    network=st.sampled_from(NETWORKS),
    drop_prob=st.just(0.0),
    delay_prob=st.floats(0.0, 0.5),
    delay_mean=st.floats(1e-5, 1e-3),
    start=_starts,
    duration=st.one_of(st.none(), _durations),
)
_bgloads = st.builds(
    BackgroundLoad,
    machine=st.sampled_from(MACHINES),
    intensity=st.floats(0.05, 0.95),
    start=_starts,
    duration=_durations,
    burst_mean=st.floats(1e-4, 1e-1),
)

_plans = st.lists(
    st.one_of(_slowdowns, _pauses, _links, _messages, _bgloads),
    min_size=0,
    max_size=6,
).map(FaultPlan)


class TestFaultPlanRoundTrip:
    @given(plan=_plans)
    @settings(max_examples=50, deadline=None)
    def test_value_round_trip(self, plan):
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.to_json() == plan.to_json()

    @given(plan=_plans, fault_seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_compiled_timeline_is_bit_identical(self, plan, fault_seed):
        restored = FaultPlan.from_json(plan.to_json())
        original = run_gather(
            TOPOLOGY, 2000, seed=1, faults=plan, fault_seed=fault_seed
        )
        replayed = run_gather(
            TOPOLOGY, 2000, seed=1, faults=restored, fault_seed=fault_seed
        )
        assert replayed.time == original.time
        assert replayed.supersteps == original.supersteps
        a = original.runtime.vm.injector
        b = replayed.runtime.vm.injector
        assert (b.dropped_messages, b.delayed_messages) == (
            a.dropped_messages, a.delayed_messages
        )
