"""Property tests: simulation-engine invariants under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Barrier, Engine, Resource, Store


class TestEventOrdering:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_callbacks_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            timer = engine.timeout(delay)
            timer.add_callback(lambda _e, d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(fired)
        if delays:
            assert engine.now == max(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_clock_never_goes_backwards(self, delays):
        engine = Engine()
        observed = []
        for delay in delays:
            timer = engine.timeout(delay)
            timer.add_callback(lambda _e: observed.append(engine.now))
        engine.run()
        assert observed == sorted(observed)


class TestResourceInvariants:
    @given(
        capacity=st.integers(min_value=1, max_value=4),
        durations=st.lists(
            st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=12
        ),
    )
    def test_in_use_never_exceeds_capacity(self, capacity, durations):
        engine = Engine()
        resource = Resource(engine, capacity=capacity)
        max_seen = [0]

        def worker(duration):
            yield resource.request()
            max_seen[0] = max(max_seen[0], resource.in_use)
            try:
                yield engine.timeout(duration)
            finally:
                resource.release()

        for duration in durations:
            engine.process(worker(duration))
        engine.run()
        assert max_seen[0] <= capacity
        assert resource.in_use == 0

    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=10
        )
    )
    def test_unit_resource_serialises_total_time(self, durations):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker(duration):
            yield from resource.occupy(duration)

        for duration in durations:
            engine.process(worker(duration))
        engine.run()
        assert abs(engine.now - sum(durations)) < 1e-9


class TestStoreInvariants:
    @given(items=st.lists(st.integers(), max_size=40))
    def test_fifo_preserved(self, items):
        engine = Engine()
        store = Store(engine)
        for item in items:
            store.put(item)
        out = [store.get().value for _ in items]
        assert out == items

    @given(
        items=st.lists(st.integers(min_value=0, max_value=9), max_size=30),
        wanted=st.integers(min_value=0, max_value=9),
    )
    def test_filtered_gets_preserve_rest(self, items, wanted):
        engine = Engine()
        store = Store(engine)
        for item in items:
            store.put(item)
        matching = [i for i in items if i == wanted]
        got = []
        for _ in matching:
            got.append(store.get(lambda x: x == wanted).value)
        assert got == matching
        assert list(store.peek_all()) == [i for i in items if i != wanted]


class TestBarrierInvariants:
    @given(
        parties=st.integers(min_value=1, max_value=8),
        cycles=st.integers(min_value=1, max_value=5),
        cost=st.floats(min_value=0, max_value=1.0),
    )
    def test_everyone_released_every_cycle(self, parties, cycles, cost):
        engine = Engine()
        barrier = Barrier(engine, parties=parties, cost=cost)
        releases = []

        def worker(i):
            for _ in range(cycles):
                cycle = yield barrier.wait()
                releases.append((cycle, i))

        for i in range(parties):
            engine.process(worker(i))
        engine.run()
        assert len(releases) == parties * cycles
        assert barrier.cycles == cycles
        # Within each cycle, all parties present exactly once.
        for cycle in range(cycles):
            members = sorted(i for c, i in releases if c == cycle)
            assert members == list(range(parties))
        assert abs(engine.now - cycles * cost) < 1e-9


class TestDeterminism:
    @given(
        seed_delays=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_identical_schedules_identical_traces(self, seed_delays):
        def run():
            engine = Engine()
            resource = Resource(engine)
            log = []

            def worker(i, d1, d2):
                yield engine.timeout(d1)
                yield from resource.occupy(d2)
                log.append((i, engine.now))

            for i, (d1, d2) in enumerate(seed_delays):
                engine.process(worker(i, d1, d2))
            engine.run()
            return log, engine.now

        assert run() == run()
