"""Acceptance property: empty/absent dynamic plans are exact no-ops.

The tentpole guarantee of ``repro.dynamics`` is that *carrying* the
machinery costs nothing: a session or run handed ``dynamics=None``,
``DynamicPlan.empty()``, or a zero-rate ``churn_plan`` must be
bit-identical — every float in the report, not approximately equal —
to one that never heard of dynamics.  Hypothesis drives seeds and
offered rates so the property holds across sessions, not just the
default one.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import two_lans
from repro.collectives import run_gather
from repro.dynamics import DynamicPlan, churn_plan, compile_plan
from repro.serve import default_config, run_service

TOPOLOGY = two_lans()


def _session(seed: int, rate: float):
    config = dataclasses.replace(default_config(), duration=2.0, seed=seed)
    return dataclasses.replace(
        config, arrival=dataclasses.replace(config.arrival, rate=rate)
    )


class TestServeNoOpPlans:
    @given(seed=st.integers(0, 2**16), rate=st.sampled_from([2.0, 8.0, 32.0]))
    @settings(max_examples=6, deadline=None)
    def test_empty_plan_is_bit_identical(self, seed, rate):
        config = _session(seed, rate)
        baseline = run_service(config)
        as_none = run_service(config, dynamics=None)
        as_empty = run_service(config, dynamics=DynamicPlan.empty())
        as_zero_churn = run_service(
            config,
            dynamics=churn_plan(["lan0-m0"], rate=0.0, duration=config.duration),
        )
        assert as_none == baseline
        assert as_empty == baseline
        assert as_zero_churn == baseline
        assert as_empty.to_jsonable() == baseline.to_jsonable()

    def test_empty_plan_report_is_static(self):
        report = run_service(_session(0, 4.0), dynamics=DynamicPlan.empty())
        assert report.epochs == 1
        assert report.redispatched == 0
        assert report.degraded == 0
        assert report.degraded_shed == 0


class TestCollectiveNoOpPlans:
    @given(seed=st.integers(0, 2**16), n=st.sampled_from([2000, 20_000]))
    @settings(max_examples=8, deadline=None)
    def test_empty_compile_is_bit_identical(self, seed, n):
        baseline = run_gather(TOPOLOGY, n, seed=seed)
        compiled = compile_plan(DynamicPlan.empty(), TOPOLOGY, horizon=10.0)
        assert compiled.is_static
        carried = run_gather(TOPOLOGY, n, seed=seed, faults=compiled.fault_plan)
        assert carried.time == baseline.time
        assert carried.predicted_time == baseline.predicted_time
        assert carried.supersteps == baseline.supersteps
