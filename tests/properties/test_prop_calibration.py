"""Acceptance property: calibration round-trips the analytic model.

Two halves of the ISSUE criterion.  Noise-free, ``fit_params`` over a
campaign's *predicted* step costs must recover ``calibrate``'s priors
exactly (to solver precision) — the estimator is the inverse of the
cost model.  Under multiplicative lognormal noise at ``sigma = 0.1``
on every per-step cost, a realistic campaign (three message sizes, 40
replicated measurements per configuration — independent noise draws of
the same runs, as a real testbed would collect) must land every fitted
parameter within 5% relative error of the truth.

The noise model perturbs ``gh`` and ``L`` jointly per step (``w`` is
zero for gathers), so the observed step duration ``d' = d * e`` with
``e ~ lognormal(sigma)`` — per-step timing jitter, not parameter
drift.  Replicas are distinct run records (suffixed names) exactly as
``repro calibrate --fit`` would receive them from repeated exports.
"""

import dataclasses

import pytest

from repro.calib import calibration_campaign, fit_params
from repro.cluster import two_lans
from repro.model import calibrate
from repro.util.rng import RngStream

TOPOLOGY = two_lans()
PRIORS = calibrate(TOPOLOGY)
NAMES = [m.name for m in TOPOLOGY.machines]
SIGMA = 0.1
SIZES = (16384, 65536, 262144)
REPLICAS = 40


def _perturb(runs, sigma, seed, replicas):
    """Replicate a campaign with independent per-step lognormal noise."""
    out = []
    stream = RngStream(seed, "test", "noise")
    for rep in range(replicas):
        for i, run in enumerate(runs):
            s = stream.child(str(rep), str(i))
            predicted = tuple(
                (label, level, w, gh * e, L * e)
                for (label, level, w, gh, L), e in (
                    (step, s.lognormal_factor(sigma)) for step in run.predicted
                )
            )
            out.append(
                dataclasses.replace(
                    run, predicted=predicted, name=f"{run.name}#r{rep}"
                )
            )
    return out


def _relative_errors(result):
    g_err = abs(result.g - PRIORS.g) / PRIORS.g
    fitted_G = dict(result.G)
    r_errs = {
        name: abs(fitted_G[name] / result.g - PRIORS.r_of(0, j))
        / PRIORS.r_of(0, j)
        for j, name in enumerate(NAMES)
    }
    return g_err, r_errs


class TestNoiseFreeRoundTrip:
    def test_predicted_fit_is_exact(self):
        runs = calibration_campaign(TOPOLOGY, sizes=SIZES)
        result = fit_params(runs, TOPOLOGY, source="predicted")
        g_err, r_errs = _relative_errors(result)
        assert g_err <= 1e-9
        assert all(err <= 1e-9 for err in r_errs.values())
        assert result.residual < 1e-9
        assert result.runs_skipped == 0

    def test_fitted_params_reproduce_predictions(self):
        # The fitted parameter set must price the campaign's own steps
        # identically to the priors it recovered.
        runs = calibration_campaign(TOPOLOGY, sizes=(16384,))
        result = fit_params(runs, TOPOLOGY, source="predicted")
        assert result.params.g == pytest.approx(PRIORS.g, rel=1e-9)
        assert result.params.r == pytest.approx(PRIORS.r, rel=1e-9)


class TestNoisyRoundTrip:
    @pytest.fixture(scope="class")
    def campaign(self):
        return calibration_campaign(TOPOLOGY, sizes=SIZES)

    @pytest.mark.parametrize("noise_seed", [0, 1, 2])
    def test_within_five_percent_at_sigma_point_one(self, campaign, noise_seed):
        noisy = _perturb(campaign, SIGMA, noise_seed, REPLICAS)
        result = fit_params(noisy, TOPOLOGY, source="predicted")
        g_err, r_errs = _relative_errors(result)
        assert g_err <= 0.05, f"g off by {g_err:.2%}"
        for name, err in r_errs.items():
            assert err <= 0.05, f"r[{name}] off by {err:.2%}"
        # Every machine measured, none fell back to priors: the whole
        # bound is earned from the noisy data.
        assert result.fallback_machines == ()

    def test_noise_widens_the_residual(self, campaign):
        clean = fit_params(campaign, TOPOLOGY, source="predicted")
        noisy = fit_params(
            _perturb(campaign, SIGMA, 0, REPLICAS),
            TOPOLOGY,
            source="predicted",
        )
        assert noisy.residual > clean.residual
        assert noisy.residual == pytest.approx(SIGMA, rel=0.5)
