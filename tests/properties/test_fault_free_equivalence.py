"""The central fault-injection guarantee: an *empty* plan is a no-op.

Attaching an injector with an empty :class:`~repro.faults.FaultPlan`
must reproduce the fault-free simulation **bit-for-bit** — same
makespans, same traces — on every preset machine.  This is what makes
robustness experiments comparable against the paper's fault-free
figures: the baseline series *is* the original experiment.

Also covered: the determinism contract — same (plan, seed) pairs give
identical makespans.
"""

import pytest

from repro.cli import build_preset
from repro.collectives import run_broadcast, run_gather
from repro.faults import DeliveryPolicy, FaultPlan, flaky_network_plan, straggler_plan

#: Every preset family, at small sizes so the sweep stays fast.
PRESET_SPECS = [
    "testbed:4",
    "flat:4",
    "fig1",
    "two-lans:2",
    "multi-lan:2",
    "grid",
    "deep:2",
]

N = 2560  # 10 KB of int32 items


def _run(collective, topology, **kwargs):
    runner = run_gather if collective == "gather" else run_broadcast
    return runner(topology, N, seed=1, trace=True, **kwargs)


class TestEmptyPlanIsBitIdentical:
    @pytest.mark.parametrize("preset", PRESET_SPECS)
    @pytest.mark.parametrize("collective", ["gather", "broadcast"])
    def test_makespan_and_trace_identical(self, preset, collective):
        topology = build_preset(preset)
        bare = _run(collective, topology)
        empty = _run(collective, topology, faults=FaultPlan.empty())
        assert empty.time == bare.time  # bit-identical, not approx
        assert empty.result.trace.records == bare.result.trace.records
        assert empty.result.values == bare.result.values

    def test_empty_plan_attaches_a_real_injector(self):
        # The guarantee is about an *attached* injector being inert,
        # not about skipping attachment.
        outcome = _run("gather", build_preset("testbed:4"), faults=FaultPlan.empty())
        assert outcome.runtime.vm.injector is not None


class TestSameSeedSamePlan:
    @pytest.mark.parametrize("plan_name", ["straggler", "flaky"])
    def test_identical_hbsp_result_time(self, plan_name):
        topology = build_preset("testbed:4")
        if plan_name == "straggler":
            plan = straggler_plan(topology.machines[0].name, factor=4.0)
            delivery = None
        else:
            plan = flaky_network_plan(drop_prob=0.05, delay_prob=0.1,
                                      delay_mean=2e-3)
            delivery = DeliveryPolicy.retry(3, timeout=0.05)
        results = [
            run_gather(topology, N, seed=2, faults=plan, fault_seed=2,
                       delivery=delivery).result
            for _ in range(2)
        ]
        assert results[0].time == results[1].time

    def test_different_seed_flaky_differs(self):
        topology = build_preset("testbed:4")
        plan = flaky_network_plan(drop_prob=0.2, delay_prob=0.3, delay_mean=2e-3)
        delivery = DeliveryPolicy.retry(3, timeout=0.05)
        a = run_gather(topology, N, seed=2, faults=plan, fault_seed=1,
                       delivery=delivery).time
        b = run_gather(topology, N, seed=2, faults=plan, fault_seed=2,
                       delivery=delivery).time
        assert a != b
