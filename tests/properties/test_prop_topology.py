"""Property tests: random topologies keep their structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.model import HBSPTree, calibrate

# ---------------------------------------------------------------------------
# Strategy: random k-level trees of machines
# ---------------------------------------------------------------------------

_counter = 0


def _fresh_name(prefix: str) -> str:
    global _counter
    _counter += 1
    return f"{prefix}{_counter}"


@st.composite
def machine_strategy(draw):
    return MachineSpec(
        _fresh_name("m"),
        cpu_rate=draw(st.floats(min_value=1e6, max_value=1e9)),
        nic_gap=draw(st.floats(min_value=1e-8, max_value=1e-6)),
    )


@st.composite
def network_strategy(draw):
    return NetworkSpec(
        _fresh_name("net"),
        gap=draw(st.floats(min_value=0, max_value=1e-6)),
        latency=draw(st.floats(min_value=0, max_value=1e-2)),
        sync_base=draw(st.floats(min_value=0, max_value=1e-2)),
        sync_per_member=draw(st.floats(min_value=0, max_value=1e-3)),
    )


@st.composite
def cluster_strategy(draw, depth):
    n_children = draw(st.integers(min_value=1, max_value=3))
    children = []
    for _ in range(n_children):
        if depth > 0 and draw(st.booleans()):
            children.append(draw(cluster_strategy(depth=depth - 1)))
        else:
            children.append(draw(machine_strategy()))
    return Cluster(_fresh_name("c"), draw(network_strategy()), children)


@st.composite
def topology_strategy(draw):
    return ClusterTopology(draw(cluster_strategy(depth=2)))


class TestTopologyInvariants:
    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_members_of_root_are_all_machines(self, topology):
        root_name = topology.clusters[0].name
        assert sorted(topology.members(root_name)) == list(
            range(topology.num_machines)
        )

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_routes_are_symmetric_and_total(self, topology):
        p = topology.num_machines
        for a in range(p):
            for b in range(p):
                net_ab, level_ab = topology.route(a, b)
                net_ba, level_ba = topology.route(b, a)
                assert net_ab is net_ba
                assert level_ab == level_ba
                assert 1 <= level_ab <= topology.height or a == b

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_route_level_never_decreases_with_distance(self, topology):
        """Machines in the same innermost cluster route at a level no
        higher than machines in different subtrees."""
        p = topology.num_machines
        for a in range(p):
            own = topology.machine_cluster(a)
            for b in range(p):
                if b == a:
                    continue
                _net, level = topology.route(a, b)
                if topology.machine_cluster(b) == own:
                    assert level == topology.cluster_level(own)

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_fastest_is_globally_fastest(self, topology):
        fastest = topology.machines[topology.fastest()]
        assert fastest.cpu_rate == max(m.cpu_rate for m in topology.machines)

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_normalized_preserves_machines_and_routes(self, topology):
        norm = topology.normalized()
        assert [m.name for m in norm.machines] == [m.name for m in topology.machines]
        assert norm.height == topology.height
        for a in range(topology.num_machines):
            for b in range(topology.num_machines):
                if a != b:
                    assert norm.route(a, b)[0].name == topology.route(a, b)[0].name


class TestTreeInvariants:
    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_level_populations_partition_leaves(self, topology):
        tree = HBSPTree(topology)
        for level in range(1, tree.k + 1):
            members: list[int] = []
            for node in tree.level_nodes(level):
                members.extend(node.members)
            assert sorted(members) == list(range(tree.num_processors))

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_coordinator_is_fastest_member_everywhere(self, topology):
        tree = HBSPTree(topology)
        for node in tree.walk():
            best = max(
                node.members, key=lambda mid: tree.topology.machines[mid].cpu_rate
            )
            assert (
                tree.topology.machines[node.coordinator].cpu_rate
                == tree.topology.machines[best].cpu_rate
            )

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_fan_out_consistency(self, topology):
        tree = HBSPTree(topology)
        for level in range(1, tree.k + 1):
            total_children = sum(node.fan_out for node in tree.level_nodes(level))
            assert total_children == tree.m(level - 1)


class TestCalibrationInvariants:
    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_calibrated_params_validate(self, topology):
        params = calibrate(topology)  # HBSPParams.__post_init__ checks
        assert params.p == topology.num_machines
        assert params.g == topology.normalized().min_nic_gap()

    @given(topology=topology_strategy())
    @settings(max_examples=40, deadline=None)
    def test_children_navigation_total(self, topology):
        params = calibrate(topology)
        for level in range(1, params.k + 1):
            seen = []
            for j in range(params.m[level]):
                seen.extend(params.children_of(level, j))
            assert seen == [(level - 1, i) for i in range(params.m[level - 1])]
