"""Property tests: the Section-4 closed forms on random flat machines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.cost import CostLedger
from repro.model.params import HBSPParams
from repro.model.predict import (
    paper_broadcast_hbsp1_one_phase,
    paper_broadcast_hbsp1_two_phase,
    paper_gather_hbsp1,
    predict_broadcast,
    predict_gather,
)


@st.composite
def flat_params(draw):
    """Random HBSP^1 parameter sets with a normalised fastest machine
    and *balanced* workloads (c_j proportional to 1/r_j, the paper's
    premise: then r_j·c_j < 1 for every machine, Section 4.2)."""
    p = draw(st.integers(min_value=2, max_value=12))
    extra_r = [
        draw(st.floats(min_value=1.0, max_value=8.0)) for _ in range(p - 1)
    ]
    r_values = [1.0] + extra_r
    weights = [1.0 / r for r in r_values]
    total = sum(weights)
    c_values = [w / total for w in weights]
    c_values[0] += 1.0 - sum(c_values)  # exact unit sum
    r = {(0, j): r_values[j] for j in range(p)}
    r[(1, 0)] = 1.0
    c = {(0, j): c_values[j] for j in range(p)}
    c[(1, 0)] = 1.0
    fan_out = {(0, j): 0 for j in range(p)}
    fan_out[(1, 0)] = p
    return HBSPParams(
        k=1,
        g=draw(st.floats(min_value=1e-9, max_value=1e-6)),
        m=(p, 1),
        r=r,
        L={(1, 0): draw(st.floats(min_value=0.0, max_value=0.01))},
        c=c,
        fan_out=fan_out,
    )


N = 50_000


class TestGatherFormulas:
    @given(params=flat_params())
    @settings(max_examples=40, deadline=None)
    def test_exact_never_exceeds_paper_bound(self, params):
        """The paper upper-bounds the balanced gather by g·n + L; the
        exact h-relation (no self-receive) can only be cheaper."""
        exact = predict_gather(params, N).total
        assert exact <= paper_gather_hbsp1(params, N) + 1e-12

    @given(params=flat_params(), factor=st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_n(self, params, factor):
        assert (
            predict_gather(params, N * factor).total
            >= predict_gather(params, N).total
        )

    @given(params=flat_params())
    @settings(max_examples=30, deadline=None)
    def test_fastest_root_is_optimal_for_balanced_gather(self, params):
        """The model recommends the fastest root: no other root predicts
        cheaper for balanced workloads — up to ties in r, where the
        integer partition can shift a few items' worth of cost between
        equally-fast candidates."""
        best = min(
            predict_gather(params, N, root=r).total for r in range(params.p)
        )
        fastest = predict_gather(params, N, root=params.fastest_index(0)).total
        quantum = params.g * 4 * params.slowest_r(0) * 4  # a few items
        assert fastest <= best + quantum


class TestBroadcastFormulas:
    @given(params=flat_params())
    @settings(max_examples=40, deadline=None)
    def test_two_phase_exact_vs_paper(self, params):
        exact = predict_broadcast(params, N, phases="two").total
        paper = paper_broadcast_hbsp1_two_phase(params, N)
        assert exact <= paper * 1.001

    @given(params=flat_params())
    @settings(max_examples=40, deadline=None)
    def test_one_phase_exact_below_paper(self, params):
        """Paper's one-phase formula charges m root-sends; exact charges
        m-1 (no self-send) — valid under the paper's own assumption that
        no machine is m times slower than the fastest ("it is quite
        unlikely that a machine would communicate m times slower")."""
        if params.slowest_r(0) > params.p:
            return  # outside the formula's stated regime
        exact = predict_broadcast(params, N, phases="one").total
        paper = paper_broadcast_hbsp1_one_phase(params, N)
        assert exact <= paper + 1e-12

    @given(params=flat_params())
    @settings(max_examples=40, deadline=None)
    def test_two_phase_wins_for_large_fanout_small_rs(self, params):
        """The paper's conclusion holds whenever p is comfortably above
        1 + r_s: the two-phase cost g·n(1+r_s) beats one-phase g·n·(p-1)."""
        r_s = params.slowest_r(0)
        if params.p - 1 > (1 + r_s) * 1.5 and params.L_of(1, 0) < 1e-4:
            one = predict_broadcast(params, N, phases="one").total
            two = predict_broadcast(params, N, phases="two").total
            assert two < one

    @given(params=flat_params())
    @settings(max_examples=30, deadline=None)
    def test_ledgers_are_well_formed(self, params):
        for phases in ("one", "two"):
            ledger = predict_broadcast(params, N, phases=phases)
            assert isinstance(ledger, CostLedger)
            assert ledger.total >= 0
            assert all(step.level == 1 for step in ledger.steps)
