"""Property tests: discovery recovers random hierarchies exactly.

The core guarantee of the subsystem (and of the level-cut heuristic):
on a *noiseless* matrix synthesized from any tree whose per-level
latencies are separated beyond the band tolerance, ``discover()``
returns the generating partition at every level, for both backends.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.cluster.discover import (
    discover,
    exact_recovery,
    synthesize,
    topology_partitions,
)

# ---------------------------------------------------------------------------
# Strategy: random trees of height <= 3 with well-separated level latencies
# ---------------------------------------------------------------------------

#: Per-level wire latencies, an order of magnitude apart (the regime the
#: paper assumes; level_bands' default 30% tolerance cannot merge them).
LEVEL_LATENCY = {1: 1e-5, 2: 1.5e-4, 3: 2e-3}

#: Leaf budget per generated tree.
MAX_LEAVES = 64

_counter = 0


def _fresh(prefix: str) -> str:
    global _counter
    _counter += 1
    return f"{prefix}{_counter}"


def _network(level: int) -> NetworkSpec:
    latency = LEVEL_LATENCY[level]
    return NetworkSpec(
        _fresh("net"),
        gap=1e-7 * level,
        latency=latency,
        sync_base=5 * latency,
        sync_per_member=latency,
    )


@st.composite
def machine_strategy(draw):
    return MachineSpec(
        _fresh("m"),
        cpu_rate=draw(st.floats(min_value=1e6, max_value=1e9)),
        nic_gap=draw(st.floats(min_value=1e-8, max_value=1e-6)),
    )


@st.composite
def balanced_tree_strategy(draw):
    """A random tree: every leaf at the same depth, uniform nets per level.

    Equal leaf depth plus one shared NetworkSpec per level keeps the
    synthesized matrix exactly ultrametric with one distance value per
    level — the setting in which exact recovery is the specified
    behaviour (a level whose latency coincides with another's would
    *correctly* merge, which strict partition equality would flag).
    """
    height = draw(st.integers(min_value=1, max_value=3))
    # Fan-outs per level, innermost first; capped so leaves <= MAX_LEAVES.
    fans = []
    leaves = 1
    for _level in range(height):
        fan = draw(st.integers(min_value=2, max_value=4))
        fan = min(fan, max(2, MAX_LEAVES // max(1, leaves * 2)))
        fans.append(fan)
        leaves *= fan
    nets = {level: _network(level) for level in range(1, height + 1)}

    def build(level: int):
        if level == 0:
            return draw(machine_strategy())
        children = [build(level - 1) for _ in range(fans[level - 1])]
        return Cluster(_fresh("c"), nets[level], children)

    return ClusterTopology(build(height))


class TestExactRecovery:
    @given(topology=balanced_tree_strategy())
    @settings(max_examples=30, deadline=None)
    def test_noiseless_linkage_recovers_partitions(self, topology):
        result = discover(synthesize(topology), method="linkage")
        assert exact_recovery(topology_partitions(topology), result.partitions)

    @given(topology=balanced_tree_strategy())
    @settings(max_examples=30, deadline=None)
    def test_noiseless_bands_recovers_partitions(self, topology):
        result = discover(synthesize(topology), method="bands")
        assert exact_recovery(topology_partitions(topology), result.partitions)

    @given(topology=balanced_tree_strategy())
    @settings(max_examples=20, deadline=None)
    def test_recovered_topology_routes_like_truth(self, topology):
        """Reconstruction preserves which pairs share which level."""
        result = discover(synthesize(topology))
        p = topology.num_machines
        for a in range(p):
            for b in range(a + 1, p):
                _, true_level = topology.route(a, b)
                _, est_level = result.topology.normalized().route(a, b)
                assert est_level == true_level


class TestNoiseRobustness:
    def test_fixed_seed_noise_survives(self):
        """Realistic ping jitter (sigma = 0.1, ~10%) cannot merge bands
        an order of magnitude apart: recovery stays exact."""
        from repro.cluster.discover.generators import GENERATORS

        specs = {
            "fat_tree": {"pods": 2, "racks_per_pod": 3, "hosts_per_rack": 4},
            "multi_rack": {"racks": 4, "hosts_per_rack": 6},
            "cloud_spot_mix": {
                "regions": 2, "zones_per_region": 2, "instances_per_zone": 5,
            },
            "multicore_nodes": {
                "racks": 2, "nodes_per_rack": 3, "cores_per_node": 3,
            },
        }
        for family, spec in specs.items():
            topology = GENERATORS[family](seed=13, **spec)
            matrix = synthesize(topology, noise=0.1, seed=99)
            result = discover(matrix)
            assert exact_recovery(
                topology_partitions(topology), result.partitions
            ), f"{family} lost exact recovery at sigma=0.1"
