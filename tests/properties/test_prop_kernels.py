"""Property tests: vectorized kernels vs scalar predictors on random trees.

The acceptance bar for :mod:`repro.model.kernels` is exact float
equality — not closeness — against :mod:`repro.model.predict`, on
*randomized* HBSP^k topologies (k up to 3, arbitrary fan-outs, random
``r``/``L``/``c``).  The planner must agree with a brute-force scalar
enumeration, including tie-breaks.
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.model.kernels import BroadcastKernel, GatherKernel, equal_counts
from repro.model.params import HBSPParams
from repro.model.planner import best_broadcast_phases, best_root
from repro.model.predict import default_counts, predict_broadcast, predict_gather


@st.composite
def tree_params(draw):
    """Random HBSP^k parameter sets with genuine hierarchy.

    k in 1..3; every cluster draws its own fan-out (1..3, so wrapper
    clusters with a single child occur); leaf ``r`` spans [1, 8] with
    leaf 0 pinned to the normalised fastest; cluster ``r`` follows the
    coordinator convention (fastest leaf of the subtree); level-0
    fractions are speed-proportional with an exact unit sum.
    """
    k = draw(st.integers(min_value=1, max_value=3))
    nodes = {k: 1}
    fan_out = {}
    for level in range(k, 0, -1):
        total = 0
        for j in range(nodes[level]):
            fan = draw(st.integers(min_value=1, max_value=3))
            fan_out[(level, j)] = fan
            total += fan
        nodes[level - 1] = total
    p = nodes[0]
    for j in range(p):
        fan_out[(0, j)] = 0

    r_values = [1.0] + [
        draw(st.floats(min_value=1.0, max_value=8.0)) for _ in range(p - 1)
    ]
    weights = [1.0 / r for r in r_values]
    total_w = sum(weights)
    c_values = [w / total_w for w in weights]
    c_values[0] += 1.0 - sum(c_values)  # exact unit sum

    # Subtree leaf sets, bottom-up (children are contiguous DFS runs).
    leaves = [[(j,) for j in range(p)]]
    for level in range(1, k + 1):
        row, offset = [], 0
        for j in range(nodes[level]):
            merged = []
            for c_index in range(fan_out[(level, j)]):
                merged.extend(leaves[level - 1][offset + c_index])
            row.append(tuple(merged))
            offset += fan_out[(level, j)]
        leaves.append(row)

    r = {(0, j): r_values[j] for j in range(p)}
    c = {(0, j): c_values[j] for j in range(p)}
    L = {}
    for level in range(1, k + 1):
        for j in range(nodes[level]):
            subtree = leaves[level][j]
            r[(level, j)] = min(r_values[leaf] for leaf in subtree)
            c[(level, j)] = math.fsum(c_values[leaf] for leaf in subtree)
            L[(level, j)] = draw(st.floats(min_value=0.0, max_value=0.01))

    return HBSPParams(
        k=k,
        g=draw(st.floats(min_value=1e-9, max_value=1e-6)),
        m=tuple(nodes[level] for level in range(k + 1)),
        r=r,
        L=L,
        c=c,
        fan_out=fan_out,
    )


ns_lists = st.lists(
    st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=4
)


def assert_ledger_identical(expected, actual):
    assert actual.name == expected.name
    assert len(actual.steps) == len(expected.steps)
    for got, want in zip(actual.steps, expected.steps):
        assert got.label == want.label
        assert got.level == want.level
        assert got.w == want.w
        assert got.gh == want.gh
        assert got.L == want.L
    assert actual.total == expected.total


class TestKernelScalarEquality:
    @given(params=tree_params(), ns=ns_lists, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_gather_bit_identical(self, params, ns, data):
        roots = [
            data.draw(st.integers(min_value=0, max_value=params.p - 1))
            for _ in ns
        ]
        grid = GatherKernel(params).evaluate(
            np.array(ns, dtype=np.int64), roots=np.array(roots, dtype=np.int64)
        )
        for i, (n, root) in enumerate(zip(ns, roots)):
            expected = predict_gather(params, n, root=root)
            assert_ledger_identical(expected, grid.ledger(i))
            assert grid.totals[i] == expected.total

    @given(params=tree_params(), ns=ns_lists)
    @settings(max_examples=40, deadline=None)
    def test_gather_equal_counts_bit_identical(self, params, ns):
        ns_arr = np.array(ns, dtype=np.int64)
        counts = equal_counts(params, ns_arr)
        grid = GatherKernel(params).evaluate(ns_arr, counts=counts)
        for i, n in enumerate(ns):
            expected = predict_gather(
                params, n, counts=default_counts(params.with_equal_fractions(), n)
            )
            assert_ledger_identical(expected, grid.ledger(i))

    @given(params=tree_params(), ns=ns_lists, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_broadcast_bit_identical(self, params, ns, data):
        roots = [
            data.draw(st.integers(min_value=0, max_value=params.p - 1))
            for _ in ns
        ]
        specs = [
            {
                level: data.draw(st.sampled_from(("one", "two")))
                for level in range(1, params.k + 1)
            }
            for _ in ns
        ]
        grid = BroadcastKernel(params).evaluate(
            np.array(ns, dtype=np.int64),
            roots=np.array(roots, dtype=np.int64),
            phases=specs,
        )
        for i, (n, root) in enumerate(zip(ns, roots)):
            expected = predict_broadcast(params, n, root=root, phases=specs[i])
            assert_ledger_identical(expected, grid.ledger(i))
            assert grid.totals[i] == expected.total

    @given(
        params=tree_params(),
        n=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_broadcast_weighted_fractions_bit_identical(self, params, n):
        fractions = [params.c_of(0, j) for j in range(params.p)]
        grid = BroadcastKernel(params).evaluate(
            np.array([n], dtype=np.int64), phases="two", fractions=fractions
        )
        expected = predict_broadcast(params, n, phases="two", fractions=fractions)
        assert_ledger_identical(expected, grid.ledger(0))


class TestPlannerBruteForceAgreement:
    @given(params=tree_params(), n=st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=25, deadline=None)
    def test_best_broadcast_phases(self, params, n):
        """The batched 2^k enumeration picks what a scalar scan picks —
        same spec (ties break to the first combination) and the exact
        scalar ledger for it."""
        combos = itertools.product(("one", "two"), repeat=params.k)
        best_spec, best_total = None, None
        for combo in combos:
            spec = {level: combo[level - 1] for level in range(1, params.k + 1)}
            total = predict_broadcast(params, n, phases=spec).total
            if best_total is None or total < best_total:
                best_spec, best_total = spec, total
        spec, ledger = best_broadcast_phases(params, n)
        assert spec == best_spec
        assert ledger.total == best_total
        assert_ledger_identical(
            predict_broadcast(params, n, phases=best_spec), ledger
        )

    @given(
        params=tree_params(),
        n=st.integers(min_value=0, max_value=1_000_000),
        collective=st.sampled_from(("gather", "broadcast")),
    )
    @settings(max_examples=25, deadline=None)
    def test_best_root(self, params, n, collective):
        predict = predict_gather if collective == "gather" else predict_broadcast
        best_root_scalar, best_total = None, None
        for root in range(params.p):
            total = predict(params, n, root=root).total
            if best_total is None or total < best_total:
                best_root_scalar, best_total = root, total
        root, ledger = best_root(params, n, collective=collective)
        assert root == best_root_scalar
        assert ledger.total == best_total
        assert_ledger_identical(predict(params, n, root=root), ledger)
