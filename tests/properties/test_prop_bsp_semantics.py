"""Property tests: BSP delivery semantics under random traffic.

For arbitrary send schedules (who sends what to whom in which
superstep), HBSPlib must deliver every message exactly once, to the
right process, in the superstep *after* it was sent — never earlier,
never later.  This is Section 3.2's guarantee ("a message sent in one
super^i-step is guaranteed to be available to the destination machine
at the beginning of the next super^i-step").
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import flat_cluster
from repro.hbsplib import HbspRuntime

# A schedule: list of supersteps; each superstep is a list of
# (sender, receiver, payload_id) triples.
P = 4
SUPERSTEPS = 3


@st.composite
def schedules(draw):
    out = []
    payload_id = 0
    for _step in range(SUPERSTEPS):
        sends = []
        for _ in range(draw(st.integers(min_value=0, max_value=8))):
            src = draw(st.integers(min_value=0, max_value=P - 1))
            dst = draw(st.integers(min_value=0, max_value=P - 1))
            sends.append((src, dst, payload_id))
            payload_id += 1
        out.append(sends)
    return out


def run_schedule(schedule):
    """Execute the schedule; returns per-pid {superstep: [payload ids]}."""

    def program(ctx):
        received: dict[int, list[int]] = {}
        for step, sends in enumerate(schedule):
            for src, dst, payload_id in sends:
                if src == ctx.pid:
                    yield from ctx.send(dst, payload_id, tag=step)
            yield from ctx.sync()
            received[step] = sorted(m.payload for m in ctx.messages())
        return received

    runtime = HbspRuntime(flat_cluster(P))
    return runtime.run(program).values


class TestBspDelivery:
    @given(schedule=schedules())
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_to_right_process_in_right_superstep(self, schedule):
        values = run_schedule(schedule)
        for step, sends in enumerate(schedule):
            expected: dict[int, list[int]] = {pid: [] for pid in range(P)}
            for _src, dst, payload_id in sends:
                expected[dst].append(payload_id)
            for pid in range(P):
                assert values[pid][step] == sorted(expected[pid]), (
                    f"pid {pid}, superstep {step}"
                )

    @given(schedule=schedules())
    @settings(max_examples=15, deadline=None)
    def test_deterministic_across_runs(self, schedule):
        assert run_schedule(schedule) == run_schedule(schedule)

    @given(schedule=schedules())
    @settings(max_examples=15, deadline=None)
    def test_no_message_lost_or_duplicated(self, schedule):
        values = run_schedule(schedule)
        delivered = [
            payload_id
            for per_pid in values.values()
            for ids in per_pid.values()
            for payload_id in ids
        ]
        sent = [payload_id for sends in schedule for _s, _d, payload_id in sends]
        assert sorted(delivered) == sorted(sent)
