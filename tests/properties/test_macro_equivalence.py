"""Macro-event vs object-event equivalence (the tentpole guarantee).

The macro-event fast path (:mod:`repro.sim.macro`) replays the HBSP
cost arithmetic directly instead of simulating every pack/inject/
drain/deliver event.  Its contract is **bit-identical** results — the
same simulated makespan, per-pid values, superstep counts, and
per-superstep accounting marks — on any fault-free, untraced run of a
``@macro_safe`` program.  These properties pin that contract on random
k<=3 machines, and pin the *fallback* contract: any live hook (trace,
injector — even an empty plan, delivery policy, NIC-serialization
ablation) silently reverts to the object path, and ``macro=True``
refuses instead of silently degrading.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_preset
from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.collectives import run_broadcast, run_gather
from repro.errors import HbspError
from repro.faults import DeliveryPolicy, FaultPlan
from repro.hbsplib.runtime import HbspRuntime
from repro.sim.macro import macro_safe

# ---------------------------------------------------------------------------
# Random k<=3 topology strategy (small, so paired runs stay fast)
# ---------------------------------------------------------------------------

_counter = 0


def _name(prefix):
    global _counter
    _counter += 1
    return f"{prefix}{_counter}"


@st.composite
def machine(draw):
    return MachineSpec(
        _name("m"),
        cpu_rate=draw(st.floats(min_value=1e7, max_value=1e8)),
        nic_gap=draw(st.floats(min_value=8e-8, max_value=2e-7)),
    )


@st.composite
def network(draw):
    return NetworkSpec(
        _name("net"),
        gap=draw(st.floats(min_value=0, max_value=2e-7)),
        latency=draw(st.floats(min_value=0, max_value=1e-3)),
        sync_base=draw(st.floats(min_value=0, max_value=1e-3)),
    )


@st.composite
def deep_topology(draw):
    """A random HBSP machine of depth 1, 2, or 3 (k <= 3)."""
    depth = draw(st.integers(min_value=1, max_value=3))

    def subtree(level):
        if level == 0:
            return draw(machine())
        width = draw(st.integers(min_value=1, max_value=3 if level > 1 else 4))
        children = [subtree(level - 1) for _ in range(width)]
        return Cluster(_name("c"), draw(network()), children)

    top = subtree(depth)
    topology = ClusterTopology(top)
    # Degenerate single-machine trees have nothing to send; redraw as
    # a 2-machine LAN instead of filtering (keeps shrinking simple).
    if topology.num_machines < 2:
        topology = ClusterTopology(
            Cluster(_name("c"), draw(network()), [draw(machine()), draw(machine())])
        )
    return topology


N = 4_000

_EQUAL_FIELDS = ("time", "values", "supersteps")


def _assert_bit_identical(macro, obj):
    assert macro.runtime.macro is not None  # fast path actually engaged
    assert obj.runtime.macro is None
    for field in _EQUAL_FIELDS:
        assert getattr(macro, field) == getattr(obj, field), field
    assert macro.runtime.superstep_marks() == obj.runtime.superstep_marks()


class TestBitIdenticalOnRandomMachines:
    @settings(max_examples=20, deadline=None)
    @given(topology=deep_topology(), root=st.integers(min_value=0, max_value=10))
    def test_broadcast(self, topology, root):
        root %= topology.num_machines
        macro = run_broadcast(topology, N, root=root, seed=1, macro=True)
        obj = run_broadcast(topology, N, root=root, seed=1, macro=False)
        _assert_bit_identical(macro, obj)

    @settings(max_examples=20, deadline=None)
    @given(topology=deep_topology(), root=st.integers(min_value=0, max_value=10))
    def test_gather(self, topology, root):
        root %= topology.num_machines
        macro = run_gather(topology, N, root=root, seed=1, macro=True)
        obj = run_gather(topology, N, root=root, seed=1, macro=False)
        _assert_bit_identical(macro, obj)

    def test_macro_run_is_deterministic(self):
        topology = build_preset("testbed:4")
        times = {run_gather(topology, N, seed=1, macro=True).time for _ in range(3)}
        assert len(times) == 1


# ---------------------------------------------------------------------------
# Regression: arrival-tie drain order on a shared receiver NIC
# ---------------------------------------------------------------------------

def _ulp_collapse_topology():
    """Hypothesis-found machine where two same-cluster senders' NIC
    arrivals collapse to one double.

    Both leaves of ``lan`` gather into the middle machine with inject
    ends one ulp apart; adding the wire latency rounds both arrivals
    to the *same* float.  The object path still drains the
    earlier-injecting sender first (its delivery process is spawned
    first, so the event heap's FIFO sequence orders the grants), which
    the macro timeline can only reproduce by tie-breaking equal
    arrivals on the sender's inject end — without it, the two waiters'
    barrier-wait attribution swaps.
    """
    lan = Cluster("c41", NetworkSpec(
        "net42", gap=1.8106817994039848e-07,
        latency=0.0009186785954551233, sync_base=0.0,
    ), [
        MachineSpec("m38", cpu_rate=1e7, nic_gap=8e-08),
        MachineSpec("m39", cpu_rate=10000001.0, nic_gap=1.940032868120623e-07),
        MachineSpec("m40", cpu_rate=10000000.000000002,
                    nic_gap=1.6562397650912794e-07),
    ])
    zero = dict(gap=0.0, latency=0.0, sync_base=0.0)
    quad = Cluster("c28", NetworkSpec("net29", **zero), [
        MachineSpec("m24", cpu_rate=1e7, nic_gap=1.802386175945286e-07),
        MachineSpec("m25", cpu_rate=1e7, nic_gap=1.8866400762020322e-07),
        MachineSpec("m26", cpu_rate=1e7, nic_gap=1.2466596832982166e-07),
        MachineSpec("m27", cpu_rate=1e7, nic_gap=1.0465764667212104e-07),
    ])
    mixed = Cluster("c34", NetworkSpec("net35", **zero), [
        MachineSpec("m30", cpu_rate=1e7, nic_gap=8e-08),
        MachineSpec("m31", cpu_rate=1e7, nic_gap=8e-08),
        MachineSpec("m32", cpu_rate=13209504.0, nic_gap=8e-08),
        MachineSpec("m33", cpu_rate=17903826.0, nic_gap=8e-08),
    ])
    return ClusterTopology(Cluster("c45", NetworkSpec("net46", **zero), [
        Cluster("c36", NetworkSpec("net37", **zero), [quad, mixed]),
        Cluster("c43", NetworkSpec("net44", **zero), [lan]),
    ]))


class TestArrivalTieDrainOrder:
    def test_gather_wait_attribution_matches_object_path(self):
        topology = _ulp_collapse_topology()
        macro = run_gather(topology, N, root=0, seed=1, macro=True)
        obj = run_gather(topology, N, root=0, seed=1, macro=False)
        _assert_bit_identical(macro, obj)
        # The collapse really happens here: per-pid waits differ
        # between the lan's two senders, so a swapped attribution
        # cannot hide behind symmetry.
        marks = obj.runtime.superstep_marks()
        assert marks[8][0][1] != marks[10][0][1]

    def test_broadcast_on_same_topology(self):
        topology = _ulp_collapse_topology()
        macro = run_broadcast(topology, N, root=0, seed=1, macro=True)
        obj = run_broadcast(topology, N, root=0, seed=1, macro=False)
        _assert_bit_identical(macro, obj)


# ---------------------------------------------------------------------------
# Fallback: any live hook reverts to the object path
# ---------------------------------------------------------------------------

@macro_safe
def _ping_program(ctx):
    peer = (ctx.pid + 1) % ctx.nprocs
    yield from ctx.send(peer, np.arange(4, dtype=np.int32), tag=3)
    yield from ctx.sync()
    got = ctx.messages(tag=3)
    yield from ctx.compute(1_000.0)
    yield from ctx.sync()
    return len(got)


def _plain_program(ctx):  # identical, but not @macro_safe
    yield from ctx.sync()
    return ctx.pid


class TestFallbackToObjectPath:
    def test_trace_forces_object_path(self):
        outcome = run_gather(build_preset("testbed:4"), N, seed=1, trace=True)
        assert outcome.runtime.macro is None

    def test_empty_fault_plan_forces_object_path(self):
        # An injector is an injector, even with nothing planned.
        outcome = run_gather(
            build_preset("testbed:4"), N, seed=1, faults=FaultPlan.empty()
        )
        assert outcome.runtime.macro is None

    def test_delivery_policy_forces_object_path(self):
        outcome = run_gather(
            build_preset("testbed:4"), N, seed=1,
            delivery=DeliveryPolicy.retry(3, timeout=0.05),
        )
        assert outcome.runtime.macro is None

    def test_nic_ablation_forces_object_path(self):
        runtime = HbspRuntime(build_preset("testbed:4"), serialize_nic=False)
        result = runtime.run(_ping_program)
        assert runtime.macro is None
        assert set(result.values.values()) == {1}

    def test_unmarked_program_stays_on_object_path(self):
        runtime = HbspRuntime(build_preset("testbed:4"))
        runtime.run(_plain_program)
        assert runtime.macro is None

    def test_auto_engages_when_clean(self):
        runtime = HbspRuntime(build_preset("testbed:4"))
        result = runtime.run(_ping_program)
        assert runtime.macro is not None
        assert set(result.values.values()) == {1}


class TestMacroInsistRaises:
    def test_traced_machine_refused(self):
        with pytest.raises(HbspError, match="fault-free, untraced"):
            run_gather(build_preset("testbed:4"), N, seed=1, trace=True, macro=True)

    def test_faulted_machine_refused(self):
        with pytest.raises(HbspError, match="fault-free, untraced"):
            run_gather(
                build_preset("testbed:4"), N, seed=1,
                faults=FaultPlan.empty(), macro=True,
            )

    def test_unmarked_program_refused(self):
        runtime = HbspRuntime(build_preset("testbed:4"), macro=True)
        with pytest.raises(HbspError, match="macro_safe"):
            runtime.run(_plain_program)
