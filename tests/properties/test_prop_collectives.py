"""Property tests: collectives stay correct on random machines/configs.

These are the heavyweight invariants: for arbitrary topologies, roots,
and workload splits, the data-movement postconditions of every
collective must hold, and simulated runs must be deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.collectives import (
    run_allgather,
    run_broadcast,
    run_gather,
    run_reduce,
    run_scatter,
)

# ---------------------------------------------------------------------------
# Compact random topology strategy (small, so runs stay fast)
# ---------------------------------------------------------------------------

_counter = 0


def _name(prefix):
    global _counter
    _counter += 1
    return f"{prefix}{_counter}"


@st.composite
def machine(draw):
    return MachineSpec(
        _name("m"),
        cpu_rate=draw(st.floats(min_value=1e7, max_value=1e8)),
        nic_gap=draw(st.floats(min_value=8e-8, max_value=2e-7)),
    )


@st.composite
def network(draw):
    return NetworkSpec(
        _name("net"),
        gap=draw(st.floats(min_value=0, max_value=2e-7)),
        latency=draw(st.floats(min_value=0, max_value=1e-3)),
        sync_base=draw(st.floats(min_value=0, max_value=1e-3)),
    )


@st.composite
def small_topology(draw):
    """1- or 2-level machines with 2-6 processors."""
    if draw(st.booleans()):
        count = draw(st.integers(min_value=2, max_value=6))
        return ClusterTopology(
            Cluster(_name("lan"), draw(network()), [draw(machine()) for _ in range(count)])
        )
    n_clusters = draw(st.integers(min_value=2, max_value=3))
    clusters = []
    for _ in range(n_clusters):
        count = draw(st.integers(min_value=1, max_value=3))
        clusters.append(
            Cluster(_name("lan"), draw(network()), [draw(machine()) for _ in range(count)])
        )
    return ClusterTopology(Cluster(_name("campus"), draw(network()), clusters))


N = 4_000


class TestGatherProperties:
    @given(topology=small_topology(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_root_gets_all_items_any_root(self, topology, data):
        root = data.draw(st.integers(min_value=0, max_value=topology.num_machines - 1))
        outcome = run_gather(topology, N, root=root)
        assert outcome.values[root][0] == N
        others = [v[0] for pid, v in outcome.values.items() if pid != root]
        assert all(count == 0 for count in others)

    @given(topology=small_topology())
    @settings(max_examples=15, deadline=None)
    def test_gather_checksum_independent_of_root(self, topology):
        outcomes = [
            run_gather(topology, N, root=r, seed=9)
            for r in (0, topology.num_machines - 1)
        ]
        sums = [
            next(v[1] for v in o.values.values() if v[0] == N) for o in outcomes
        ]
        assert sums[0] == sums[1]

    @given(topology=small_topology())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, topology):
        a = run_gather(topology, N, seed=3)
        b = run_gather(topology, N, seed=3)
        assert a.time == b.time
        assert a.values == b.values


class TestBroadcastProperties:
    @given(topology=small_topology(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_everyone_gets_identical_copy(self, topology, data):
        root = data.draw(st.integers(min_value=0, max_value=topology.num_machines - 1))
        phases = data.draw(st.sampled_from(["one", "two"]))
        outcome = run_broadcast(topology, N, root=root, phases=phases)
        assert {v[0] for v in outcome.values.values()} == {N}
        assert len({v[1] for v in outcome.values.values()}) == 1

    @given(topology=small_topology())
    @settings(max_examples=15, deadline=None)
    def test_phase_choice_does_not_change_data(self, topology):
        one = run_broadcast(topology, N, phases="one", seed=5)
        two = run_broadcast(topology, N, phases="two", seed=5)
        checksum_one = {v[1] for v in one.values.values()}
        checksum_two = {v[1] for v in two.values.values()}
        assert checksum_one == checksum_two


class TestScatterReduceProperties:
    @given(topology=small_topology(), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_scatter_conserves_and_respects_counts(self, topology, data):
        root = data.draw(st.integers(min_value=0, max_value=topology.num_machines - 1))
        outcome = run_scatter(topology, N, root=root)
        counts = outcome.runtime.partition(N, balanced=True)
        assert sum(v[0] for v in outcome.values.values()) == N
        for pid, (size, _checksum) in outcome.values.items():
            assert size == counts[pid]

    @given(topology=small_topology())
    @settings(max_examples=15, deadline=None)
    def test_reduce_matches_gather_total(self, topology):
        """The reduction's checksum equals the gather's: both see the
        same per-pid data (same seed) and sum over all of it."""
        width = 500
        reduce_out = run_reduce(topology, width, seed=4)
        reduce_sum = next(v[1] for v in reduce_out.values.values() if v[0] > 0)
        from repro.collectives.base import make_items
        import numpy as np

        expected = sum(
            int(make_items(4, j, width).astype(np.int64).sum())
            for j in range(topology.num_machines)
        )
        assert reduce_sum == expected

    @given(topology=small_topology())
    @settings(max_examples=10, deadline=None)
    def test_allgather_strategies_agree(self, topology):
        direct = run_allgather(topology, N, strategy="direct", seed=6)
        hier = run_allgather(topology, N, strategy="hierarchical", seed=6)
        assert {v[0] for v in direct.values.values()} == {N}
        assert {v[1] for v in direct.values.values()} == {
            v[1] for v in hier.values.values()
        }


class TestPredictionProperties:
    @given(topology=small_topology())
    @settings(max_examples=15, deadline=None)
    def test_simulated_at_least_predicted(self, topology):
        """On a single-level machine the bound is exact: the model
        omits pack/unpack CPU time and per-message overheads, so the
        simulator can never beat the prediction.

        On hierarchical machines the closed form *sums* per-level
        worst-cluster costs as if every super-step ran in lockstep,
        but the simulator's syncs are cluster-scoped: a subtree that
        finishes its level-l gather early starts its level-(l+1) sends
        inside the slower siblings' slack, so the simulation can undercut
        the summed prediction by far more than a few percent (observed
        down to 0.85x — see ``TestPredictionOvershoot``).  What every
        run must still pay is each super-step's worst-cluster cost
        individually, so the sound per-level bound is the *largest*
        ledger step, not the sum."""
        outcome = run_gather(topology, N)
        steps = outcome.predicted.steps
        if len(steps) <= 1:
            assert outcome.time >= outcome.predicted_time
        else:
            assert outcome.time >= max(step.total for step in steps)

    @given(topology=small_topology(), factor=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_predicted_cost_monotone_in_n(self, topology, factor):
        small = run_gather(topology, N).predicted_time
        large = run_gather(topology, N * factor).predicted_time
        assert large >= small


class TestPredictionOvershoot:
    """Pins the root cause of the old ``predicted * 0.97`` tolerance.

    The distilled adversarial machine: a singleton fast LAN beside a
    slow LAN whose ``sync_base`` dominates level 1.  The singleton's
    coordinator has no level-1 work, so its level-2 send overlaps the
    slow LAN's level-1 super-step in the simulator, while the closed
    form charges both levels back to back.  The overshoot here is ~15%
    — five times the old tolerance — which is why the property above
    uses the per-step bound instead of a fudge factor on the sum.
    """

    def _machine(self):
        from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec

        quiet = dict(gap=0.0, latency=0.0, sync_base=0.0)
        return ClusterTopology(
            Cluster("campus", NetworkSpec("wan", **quiet), [
                Cluster("lanA", NetworkSpec("a", **quiet),
                        [MachineSpec("a0", cpu_rate=7.9e7, nic_gap=1.94e-7)]),
                Cluster("lanB", NetworkSpec("b", gap=0.0, latency=0.0,
                                            sync_base=9.5e-4),
                        [MachineSpec("b0", cpu_rate=1e7, nic_gap=1.73e-7),
                         MachineSpec("b1", cpu_rate=1e7, nic_gap=8e-8),
                         MachineSpec("b2", cpu_rate=8e7, nic_gap=9.2e-8)]),
            ])
        )

    def test_cross_level_overlap_undercuts_summed_prediction(self):
        outcome = run_gather(self._machine(), N)
        # The overlap is real: simulated well below the lockstep sum...
        assert outcome.time < outcome.predicted_time * 0.9
        # ...but never below any single super-step's worst-cluster cost.
        assert outcome.time >= max(s.total for s in outcome.predicted.steps)
