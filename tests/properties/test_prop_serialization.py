"""Property tests: serialization round-trips arbitrary topologies."""

from hypothesis import given, settings

from repro.cluster import dumps, loads
from repro.model import calibrate

from tests.properties.test_prop_topology import topology_strategy


class TestSerializationRoundTrip:
    @given(topology=topology_strategy())
    @settings(max_examples=30, deadline=None)
    def test_structure_survives(self, topology):
        restored = loads(dumps(topology))
        assert restored.height == topology.height
        assert [m.name for m in restored.machines] == [
            m.name for m in topology.machines
        ]
        for a, b in zip(topology.machines, restored.machines):
            assert a == b

    @given(topology=topology_strategy())
    @settings(max_examples=20, deadline=None)
    def test_calibration_survives(self, topology):
        original = calibrate(topology)
        restored = calibrate(loads(dumps(topology)))
        assert original.g == restored.g
        assert original.r == restored.r
        assert original.L == restored.L
        assert original.c == restored.c

    @given(topology=topology_strategy())
    @settings(max_examples=20, deadline=None)
    def test_dumps_is_fixpoint(self, topology):
        text = dumps(topology)
        assert dumps(loads(text)) == text
