"""Property tests: workload partitioning invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytemark.ranking import fractions_from_scores, partition_items
from repro.hbsplib import equal_partition, proportional_partition

scores_strategy = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=16,
)


class TestFractionInvariants:
    @given(scores=scores_strategy)
    def test_fractions_sum_to_one_within_ulp(self, scores):
        fractions = fractions_from_scores(scores)
        assert abs(math.fsum(fractions.values()) - 1.0) < 1e-12

    @given(scores=scores_strategy)
    def test_fractions_order_matches_scores(self, scores):
        fractions = fractions_from_scores(scores)
        names = sorted(scores, key=lambda n: scores[n])
        for a, b in zip(names, names[1:]):
            if scores[a] < scores[b]:
                assert fractions[a] <= fractions[b] + 1e-15

    @given(scores=scores_strategy, scale=st.floats(min_value=0.1, max_value=10))
    def test_fractions_scale_invariant(self, scores, scale):
        base = fractions_from_scores(scores)
        scaled = fractions_from_scores({k: v * scale for k, v in scores.items()})
        for name in scores:
            assert abs(base[name] - scaled[name]) < 1e-9


class TestPartitionInvariants:
    @given(scores=scores_strategy, n=st.integers(min_value=0, max_value=10**7))
    def test_partition_conserves_n(self, scores, n):
        part = partition_items(n, fractions_from_scores(scores))
        assert sum(part.values()) == n
        assert all(v >= 0 for v in part.values())

    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=10**6))
    def test_partition_within_one_of_ideal(self, scores, n):
        fractions = fractions_from_scores(scores)
        part = partition_items(n, fractions)
        for name, fraction in fractions.items():
            assert abs(part[name] - n * fraction) < 1.0 + 1e-9

    @given(
        n=st.integers(min_value=0, max_value=10**6),
        p=st.integers(min_value=1, max_value=64),
    )
    def test_equal_partition_invariants(self, n, p):
        counts = equal_partition(n, p)
        assert len(counts) == p
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1
        # Non-increasing: leftovers go to the lowest pids.
        assert counts == sorted(counts, reverse=True)

    @given(
        n=st.integers(min_value=0, max_value=10**6),
        weights=st.lists(
            st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=32,
        ),
    )
    def test_proportional_partition_invariants(self, n, weights):
        total = math.fsum(weights)
        fractions = [w / total for w in weights]
        # Normalise the residue like fractions_from_scores does.
        fractions[max(range(len(fractions)), key=lambda i: fractions[i])] += (
            1.0 - math.fsum(fractions)
        )
        counts = proportional_partition(n, fractions)
        assert sum(counts) == n
        for count, fraction in zip(counts, fractions):
            assert abs(count - n * fraction) <= 1.0 + 1e-9
