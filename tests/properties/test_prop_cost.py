"""Property tests: cost-model algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import CostLedger, h_relation, superstep_cost

loads_strategy = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1e9),
    ),
    max_size=32,
)


class TestHRelationAlgebra:
    @given(loads=loads_strategy)
    def test_non_negative(self, loads):
        assert h_relation(loads) >= 0.0

    @given(loads=loads_strategy)
    def test_dominates_every_participant(self, loads):
        h = h_relation(loads)
        for r, volume in loads:
            assert h >= r * volume - 1e-9

    @given(loads=loads_strategy)
    def test_achieved_by_some_participant(self, loads):
        h = h_relation(loads)
        if loads:
            assert any(abs(h - r * v) < 1e-9 * max(1.0, h) for r, v in loads)

    @given(loads=loads_strategy, extra=st.tuples(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1e9),
    ))
    def test_monotone_in_participants(self, loads, extra):
        assert h_relation(loads + [extra]) >= h_relation(loads)

    @given(loads=loads_strategy, scale=st.floats(min_value=0.0, max_value=10.0))
    def test_homogeneous_in_volume(self, loads, scale):
        scaled = [(r, v * scale) for r, v in loads]
        assert abs(h_relation(scaled) - scale * h_relation(loads)) <= 1e-6 * max(
            1.0, h_relation(loads) * scale
        )

    @given(loads=loads_strategy)
    def test_permutation_invariant(self, loads):
        assert h_relation(loads) == h_relation(list(reversed(loads)))


steps_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0, max_value=1e3),
        st.floats(min_value=0, max_value=1e3),
        st.floats(min_value=0, max_value=1e3),
    ),
    max_size=16,
)


class TestLedgerAlgebra:
    @given(steps=steps_strategy)
    def test_total_is_component_sum(self, steps):
        ledger = CostLedger()
        for level, w, gh, L in steps:
            ledger.charge("s", level=level, w=w, gh=gh, L=L)
        assert abs(
            ledger.total
            - (ledger.component("w") + ledger.component("gh") + ledger.component("L"))
        ) < 1e-6

    @given(steps=steps_strategy)
    def test_extend_is_additive(self, steps):
        a = CostLedger("a")
        b = CostLedger("b")
        for i, (level, w, gh, L) in enumerate(steps):
            target = a if i % 2 == 0 else b
            target.charge("s", level=level, w=w, gh=gh, L=L)
        combined = CostLedger("c")
        combined.extend(a)
        combined.extend(b)
        assert abs(combined.total - (a.total + b.total)) < 1e-9

    @given(steps=steps_strategy)
    def test_hierarchy_penalty_bounded_by_total(self, steps):
        ledger = CostLedger()
        for level, w, gh, L in steps:
            ledger.charge("s", level=level, w=w, gh=gh, L=L)
        assert 0.0 <= ledger.hierarchy_penalty() <= ledger.total + 1e-9

    @given(
        w=st.floats(min_value=0, max_value=1e6),
        g=st.floats(min_value=0, max_value=1e3),
        h=st.floats(min_value=0, max_value=1e6),
        L=st.floats(min_value=0, max_value=1e6),
    )
    def test_superstep_cost_monotone(self, w, g, h, L):
        base = superstep_cost(w, g, h, L)
        assert superstep_cost(w + 1, g, h, L) >= base
        assert superstep_cost(w, g, h + 1, L) >= base
        assert superstep_cost(w, g, h, L + 1) > base
