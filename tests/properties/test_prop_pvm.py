"""Property tests: the PVM layer conserves messages under random traffic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ucf_testbed
from repro.pvm import VirtualMachine

P = 4

#: A traffic pattern: list of (sender_host, receiver_index, nbytes).
traffic_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=P - 1),
        st.integers(min_value=0, max_value=P - 1),
        st.integers(min_value=0, max_value=4096),
    ),
    max_size=20,
)


def run_traffic(traffic):
    """Spawn one receiver per host plus senders; return delivery stats."""
    vm = VirtualMachine(ucf_testbed(P))
    inbound = [0] * P
    for _src, dst, _nbytes in traffic:
        inbound[dst] += 1

    received: dict[int, list[tuple[int, int]]] = {i: [] for i in range(P)}

    def receiver(task, index, count):
        for _ in range(count):
            message = yield from task.recv()
            received[index].append((message.src, message.nbytes))
        return count

    receivers = [vm.spawn(receiver, host, host, inbound[host]) for host in range(P)]

    def sender(task, dst_tid, nbytes):
        yield from task.send(dst_tid, np.zeros(nbytes, dtype=np.uint8))

    sender_tasks = []
    for src, dst, nbytes in traffic:
        sender_tasks.append(
            vm.spawn(sender, src, receivers[dst].tid, nbytes)
        )
    final_time = vm.run()
    return received, sender_tasks, final_time


class TestMessageConservation:
    @given(traffic=traffic_strategy)
    @settings(max_examples=25, deadline=None)
    def test_every_message_arrives_once(self, traffic):
        received, _senders, _time = run_traffic(traffic)
        delivered = sorted(
            nbytes for messages in received.values() for _src, nbytes in messages
        )
        assert delivered == sorted(nbytes for _s, _d, nbytes in traffic)

    @given(traffic=traffic_strategy)
    @settings(max_examples=25, deadline=None)
    def test_receivers_get_exactly_their_traffic(self, traffic):
        received, _senders, _time = run_traffic(traffic)
        for dst in range(P):
            expected = sorted(
                nbytes for _s, d, nbytes in traffic if d == dst
            )
            assert sorted(n for _s, n in received[dst]) == expected

    @given(traffic=traffic_strategy)
    @settings(max_examples=15, deadline=None)
    def test_time_monotone_in_traffic(self, traffic):
        """Adding one more message can't make the simulation finish
        earlier."""
        _r, _s, base_time = run_traffic(traffic)
        _r, _s, more_time = run_traffic(traffic + [(0, 1, 2048)])
        assert more_time >= base_time - 1e-12

    @given(traffic=traffic_strategy)
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, traffic):
        a = run_traffic(traffic)
        b = run_traffic(traffic)
        assert a[0] == b[0]
        assert a[2] == b[2]

    @given(traffic=traffic_strategy)
    @settings(max_examples=15, deadline=None)
    def test_sender_stats_consistent(self, traffic):
        _received, senders, _time = run_traffic(traffic)
        total_sent = sum(task.sent_bytes for task in senders)
        assert total_sent == sum(nbytes for _s, _d, nbytes in traffic)
