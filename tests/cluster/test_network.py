"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster import NetworkSpec
from repro.errors import ValidationError


class TestValidation:
    def test_defaults_valid(self):
        NetworkSpec("net")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            NetworkSpec("")

    @pytest.mark.parametrize(
        "field", ["gap", "latency", "sync_base", "sync_per_member"]
    )
    def test_non_negative_fields(self, field):
        with pytest.raises(ValidationError):
            NetworkSpec("net", **{field: -1e-9})
        NetworkSpec("net", **{field: 0.0})


class TestSyncCost:
    def test_linear_in_members(self):
        net = NetworkSpec("net", sync_base=1.0, sync_per_member=0.1)
        assert net.sync_cost(1) == pytest.approx(1.1)
        assert net.sync_cost(10) == pytest.approx(2.0)

    def test_rejects_zero_members(self):
        with pytest.raises(ValidationError):
            NetworkSpec("net").sync_cost(0)


class TestEffectiveGap:
    def test_wire_caps_fast_nic(self):
        net = NetworkSpec("net", gap=1e-7)
        assert net.effective_gap(1e-8) == 1e-7

    def test_slow_nic_caps_fast_wire(self):
        net = NetworkSpec("net", gap=1e-9)
        assert net.effective_gap(2e-7) == 2e-7

    def test_zero_gap_network_passes_nic(self):
        net = NetworkSpec("net", gap=0.0)
        assert net.effective_gap(5e-8) == 5e-8


class TestScaled:
    def test_scaled_divides_all_costs(self):
        net = NetworkSpec("net", gap=1e-7, latency=1e-3, sync_base=1e-2, sync_per_member=1e-3)
        fast = net.scaled(10.0)
        assert fast.gap == pytest.approx(1e-8)
        assert fast.latency == pytest.approx(1e-4)
        assert fast.sync_base == pytest.approx(1e-3)
        assert fast.sync_per_member == pytest.approx(1e-4)

    def test_scaled_renames(self):
        assert NetworkSpec("net").scaled(2.0).name == "netx2"
        assert NetworkSpec("net").scaled(2.0, name="x").name == "x"

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            NetworkSpec("net").scaled(-1)
