"""Tests for hierarchy inference, scoring, and topology reconstruction."""

import numpy as np
import pytest

from repro.cluster import loads, dumps
from repro.cluster.discover import (
    DiscoveryResult,
    discover,
    exact_recovery,
    hierarchy_distance,
    level_bands,
    rand_index,
    reconstruct_topology,
    synthesize,
    topology_partitions,
)
from repro.cluster.discover.generators import GENERATORS
from repro.cluster.discover.matrix import ProbeMatrix
from repro.errors import DiscoveryError

#: Small instances of every generator family (seconds to run, same
#: structure as the big ones).
SMALL_SPECS = {
    "fat_tree": {"pods": 2, "racks_per_pod": 3, "hosts_per_rack": 4},
    "multi_rack": {"racks": 4, "hosts_per_rack": 5},
    "cloud_spot_mix": {
        "regions": 2, "zones_per_region": 2, "instances_per_zone": 4,
    },
    "multicore_nodes": {
        "racks": 2, "nodes_per_rack": 3, "cores_per_node": 3,
    },
}


class TestLevelBands:
    def test_order_of_magnitude_levels_separate(self):
        values = np.array([1e-5, 1.1e-5, 1e-4, 1.2e-4, 1e-3])
        bands = level_bands(values)
        assert len(bands) == 3
        assert bands[0] == (1e-5, 1.1e-5)

    def test_chained_values_merge(self):
        # Each value within 30% of the previous: one band.
        values = np.array([1.0, 1.2, 1.5, 1.9])
        assert len(level_bands(values)) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(DiscoveryError, match="tolerances"):
            level_bands(np.array([1.0]), rel_tol=-0.1)


class TestExactRecovery:
    @pytest.mark.parametrize("family", sorted(SMALL_SPECS))
    @pytest.mark.parametrize("method", ["linkage", "bands"])
    def test_noiseless_families_recover_exactly(self, family, method):
        topology = GENERATORS[family](seed=11, **SMALL_SPECS[family])
        result = discover(synthesize(topology), method=method)
        truth = topology_partitions(topology)
        assert exact_recovery(truth, result.partitions)
        assert result.method == method

    def test_single_machine(self):
        m = ProbeMatrix(names=("solo",), latency=np.zeros((1, 1)))
        result = discover(m)
        assert result.k == 1
        assert result.partitions == ((0,),)
        assert result.topology.num_machines == 1

    def test_unknown_method_rejected(self):
        m = ProbeMatrix(names=("a", "b"), latency=np.ones((2, 2)) * 1e-4)
        with pytest.raises(DiscoveryError, match="unknown method"):
            discover(m, method="psychic")

    def test_max_levels_caps_hierarchy(self):
        topology = GENERATORS["fat_tree"](seed=0, **SMALL_SPECS["fat_tree"])
        result = discover(synthesize(topology), max_levels=2)
        assert result.k <= 2


class TestDiscoveryResult:
    @pytest.fixture(scope="class")
    def result(self) -> DiscoveryResult:
        topology = GENERATORS["fat_tree"](seed=1, **SMALL_SPECS["fat_tree"])
        return discover(synthesize(topology))

    def test_partitions_are_canonical_and_nested(self, result):
        for labels in result.partitions:
            seen: list[int] = []
            for label in labels:
                if label not in seen:
                    seen.append(label)
            assert seen == sorted(seen)  # first-seen order
        assert len(set(result.partitions[-1])) == 1

    def test_clusters_per_level_decreasing(self, result):
        counts = result.clusters_per_level()
        assert list(counts) == sorted(counts, reverse=True)
        assert counts[-1] == 1

    def test_describe_mentions_method_and_levels(self, result):
        text = result.describe()
        assert f"HBSP^{result.k}" in text
        assert result.method in text

    def test_params_match_topology(self, result):
        assert result.params.p == result.topology.num_machines
        assert result.params.k == result.k

    def test_recovered_topology_serializes(self, result):
        restored = loads(dumps(result.topology, params=result.params))
        assert restored.num_machines == result.topology.num_machines
        assert restored.height == result.topology.height


class TestReconstruct:
    def test_partition_stack_validated(self):
        m = ProbeMatrix(names=("a", "b"), latency=np.ones((2, 2)) * 1e-4)
        with pytest.raises(DiscoveryError, match="at least one"):
            reconstruct_topology(m, [])
        with pytest.raises(DiscoveryError, match="label all"):
            reconstruct_topology(m, [(0,)])
        with pytest.raises(DiscoveryError, match="single cluster"):
            reconstruct_topology(m, [(0, 1)])
        with pytest.raises(DiscoveryError, match="coarsen"):
            reconstruct_topology(m, [(0, 0), (0, 1), (0, 0)])

    def test_speeds_and_nics_carried_into_specs(self):
        topology = GENERATORS["multi_rack"](seed=4, **SMALL_SPECS["multi_rack"])
        result = discover(synthesize(topology))
        recovered = result.topology
        assert [m.cpu_rate for m in recovered.machines] == [
            m.cpu_rate for m in topology.machines
        ]
        # NIC gaps are estimated from the gap matrix: positive and
        # within an order of magnitude of the declared ones.
        for declared, estimated in zip(
            topology.machines, recovered.machines
        ):
            assert estimated.nic_gap > 0
            assert 0.1 < estimated.nic_gap / declared.nic_gap < 10

    def test_network_latency_estimates_match_truth(self):
        topology = GENERATORS["multi_rack"](seed=4, **SMALL_SPECS["multi_rack"])
        result = discover(synthesize(topology))
        for a in range(topology.num_machines):
            for b in range(a + 1, topology.num_machines):
                true_net, _ = topology.route(a, b)
                est_net, _ = result.topology.route(a, b)
                assert est_net.latency == pytest.approx(
                    true_net.latency, rel=1e-6
                )


class TestScoring:
    def test_rand_index_bounds(self):
        same = (0, 0, 1, 1)
        assert rand_index(same, same) == 1.0
        assert rand_index((0, 0, 0, 0), (0, 1, 2, 3)) == 0.0
        assert 0.0 <= rand_index((0, 0, 1, 1), (0, 1, 0, 1)) <= 1.0

    def test_rand_index_label_invariant(self):
        a = (0, 0, 1, 1, 2)
        b = (5, 5, 9, 9, 7)
        assert rand_index(a, b) == 1.0

    def test_hierarchy_distance_zero_iff_equal(self):
        truth = [(0, 0, 1, 1), (0, 0, 0, 0)]
        assert hierarchy_distance(truth, truth) == 0.0
        off = [(0, 1, 1, 0), (0, 0, 0, 0)]
        assert hierarchy_distance(truth, off) > 0.0

    def test_exact_recovery_requires_same_level_count(self):
        truth = [(0, 0, 1, 1), (0, 0, 0, 0)]
        missing = [(0, 0, 0, 0)]
        assert not exact_recovery(truth, missing)
        assert exact_recovery(truth, [(0, 0, 1, 1), (0, 0, 0, 0)])

    def test_topology_partitions_roundtrip_on_declared_tree(self):
        topology = GENERATORS["fat_tree"](seed=0, **SMALL_SPECS["fat_tree"])
        parts = topology_partitions(topology)
        assert len(parts) == topology.height
        assert len(set(parts[-1])) == 1
        assert len(set(parts[0])) == 2 * 3  # one label per rack
