"""Unit tests for repro.cluster.presets."""

import pytest

from repro.cluster import (
    flat_cluster,
    grid_three_level,
    multi_lan,
    smp_sgi_lan,
    two_lans,
    ucf_testbed,
)
from repro.errors import ValidationError


class TestUcfTestbed:
    def test_default_is_ten(self):
        assert ucf_testbed().num_machines == 10

    def test_height_one(self):
        assert ucf_testbed().height == 1

    @pytest.mark.parametrize("p", range(2, 11))
    def test_subset_sizes(self, p):
        assert ucf_testbed(p).num_machines == p

    @pytest.mark.parametrize("p", range(2, 11))
    def test_subsets_span_speed_range(self, p):
        """Every subset contains the globally fastest and slowest machine."""
        topo = ucf_testbed(p)
        names = {m.name for m in topo.machines}
        assert "sgi-octane" in names
        assert "sun-classic" in names

    def test_single_machine(self):
        topo = ucf_testbed(1)
        assert topo.machines[0].name == "sgi-octane"

    def test_too_many_raises(self):
        with pytest.raises(ValidationError, match="at most"):
            ucf_testbed(11)

    def test_fastest_has_r_one(self):
        topo = ucf_testbed()
        g = topo.min_nic_gap()
        assert topo.machines[topo.fastest()].nic_gap == g

    def test_nic_spread_is_wire_bound(self):
        """Communication slowness spans ~1.25x (the testbed was one Ethernet)."""
        topo = ucf_testbed()
        gaps = [m.nic_gap for m in topo.machines]
        assert max(gaps) / min(gaps) == pytest.approx(1.25, rel=0.01)

    def test_cpu_spread_is_4x(self):
        topo = ucf_testbed()
        rates = [m.cpu_rate for m in topo.machines]
        assert max(rates) / min(rates) == pytest.approx(4.0, rel=0.01)


class TestFlatCluster:
    def test_sizes(self):
        assert flat_cluster(7).num_machines == 7

    def test_monotone_speeds(self):
        topo = flat_cluster(5)
        rates = [m.cpu_rate for m in topo.machines]
        assert rates == sorted(rates, reverse=True)
        gaps = [m.nic_gap for m in topo.machines]
        assert gaps == sorted(gaps)

    def test_homogeneous_option(self):
        topo = flat_cluster(4, slowdown=1.0, nic_slowdown=1.0)
        assert len({m.cpu_rate for m in topo.machines}) == 1
        assert len({m.nic_gap for m in topo.machines}) == 1

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ValidationError):
            flat_cluster(4, slowdown=0.5)

    def test_endpoint_slowdowns_exact(self):
        topo = flat_cluster(5, slowdown=4.0, nic_slowdown=2.0)
        rates = [m.cpu_rate for m in topo.machines]
        gaps = [m.nic_gap for m in topo.machines]
        assert rates[0] / rates[-1] == pytest.approx(4.0)
        assert gaps[-1] / gaps[0] == pytest.approx(2.0)

    def test_single_machine(self):
        assert flat_cluster(1).num_machines == 1


class TestSmpSgiLan:
    def test_structure_matches_figure_1(self):
        topo = smp_sgi_lan()
        assert topo.height == 2
        assert topo.num_machines == 9  # 4 SMP + 1 SGI + 4 LAN
        names = {c.name for c in topo.clusters}
        assert {"campus", "smp", "lan"} <= names

    def test_sgi_is_fastest(self):
        topo = smp_sgi_lan()
        assert topo.machines[topo.fastest()].name == "sgi-octane"

    def test_smp_bus_is_fast(self):
        topo = smp_sgi_lan()
        a = topo.machine_id("smp-cpu0")
        b = topo.machine_id("smp-cpu1")
        net, _ = topo.route(a, b)
        assert net.gap < 1e-8


class TestTwoLansAndMultiLan:
    def test_two_lans_structure(self):
        topo = two_lans(4)
        assert topo.height == 2
        assert topo.num_machines == 8

    def test_two_lans_interleaved_speeds(self):
        """Both LANs contain machines from across the speed range."""
        topo = two_lans(4)
        for lan in ("lan0", "lan1"):
            rates = [topo.machines[m].cpu_rate for m in topo.members(lan)]
            assert max(rates) / min(rates) > 1.5

    def test_multi_lan_counts(self):
        topo = multi_lan(3, 4)
        assert topo.height == 2
        assert topo.num_machines == 12
        root = topo.cluster_id("campus")
        assert len(topo.child_clusters(root)) == 3

    def test_multi_lan_validation(self):
        with pytest.raises(ValidationError):
            multi_lan(0)


class TestGrid:
    def test_three_levels(self):
        topo = grid_three_level(2, 2, 3)
        assert topo.height == 3
        assert topo.num_machines == 12

    def test_wan_at_top(self):
        topo = grid_three_level(2, 2, 2)
        a = topo.machine_id("s0l0-m0")
        b = topo.machine_id("s1l0-m0")
        net, level = topo.route(a, b)
        assert net.name == "wan"
        assert level == 3

    def test_campus_in_middle(self):
        topo = grid_three_level(2, 2, 2)
        a = topo.machine_id("s0l0-m0")
        b = topo.machine_id("s0l1-m0")
        net, level = topo.route(a, b)
        assert net.name == "campus-atm"
        assert level == 2

    def test_network_hierarchy_ordering(self):
        """Higher levels are slower: gap and sync grow going up (§1)."""
        topo = grid_three_level(2, 2, 2)
        a = topo.machine_id("s0l0-m0")
        lan_net, _ = topo.route(a, topo.machine_id("s0l0-m1"))
        campus_net, _ = topo.route(a, topo.machine_id("s0l1-m0"))
        wan_net, _ = topo.route(a, topo.machine_id("s1l0-m0"))
        assert lan_net.gap < campus_net.gap < wan_net.gap
        assert lan_net.latency < campus_net.latency < wan_net.latency
        assert lan_net.sync_base < campus_net.sync_base < wan_net.sync_base
