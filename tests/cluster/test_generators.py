"""Tests for the parametric big-machine generators."""

import pytest

from repro.cluster.discover.generators import (
    GENERATORS,
    build_generated,
    cloud_spot_mix,
    fat_tree,
    multi_rack,
    multicore_nodes,
)
from repro.errors import ValidationError


class TestShapes:
    def test_fat_tree_leaf_count_and_height(self):
        topology = fat_tree(pods=3, racks_per_pod=2, hosts_per_rack=5)
        assert topology.num_machines == 3 * 2 * 5
        assert topology.height == 3

    def test_multi_rack_leaf_count_and_height(self):
        topology = multi_rack(racks=4, hosts_per_rack=6)
        assert topology.num_machines == 24
        assert topology.height == 2

    def test_cloud_spot_mix_leaf_count_and_height(self):
        topology = cloud_spot_mix(
            regions=2, zones_per_region=2, instances_per_zone=3
        )
        assert topology.num_machines == 12
        assert topology.height == 3

    def test_multicore_nodes_leaf_count_and_height(self):
        topology = multicore_nodes(racks=2, nodes_per_rack=3, cores_per_node=4)
        assert topology.num_machines == 24
        assert topology.height == 3

    def test_bad_counts_rejected(self):
        with pytest.raises(ValidationError):
            fat_tree(pods=0)
        with pytest.raises(ValidationError):
            cloud_spot_mix(spot_fraction=1.5)


class TestDeterminism:
    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_same_seed_same_speeds(self, family):
        a = GENERATORS[family](seed=42)
        b = GENERATORS[family](seed=42)
        assert [m.cpu_rate for m in a.machines] == [
            m.cpu_rate for m in b.machines
        ]
        assert [m.name for m in a.machines] == [m.name for m in b.machines]

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_different_seed_different_speeds(self, family):
        a = GENERATORS[family](seed=1)
        b = GENERATORS[family](seed=2)
        assert [m.cpu_rate for m in a.machines] != [
            m.cpu_rate for m in b.machines
        ]


class TestHeterogeneity:
    def test_speeds_spread_by_slowdown(self):
        topology = multi_rack(racks=8, hosts_per_rack=16, slowdown=4.0)
        rates = [m.cpu_rate for m in topology.machines]
        assert max(rates) / min(rates) > 1.5
        assert max(rates) / min(rates) <= 4.0 + 1e-9

    def test_spot_instances_are_slower_and_named(self):
        topology = cloud_spot_mix(
            regions=2, zones_per_region=3, instances_per_zone=8,
            spot_fraction=0.5, seed=3,
        )
        spot = [m for m in topology.machines if "-spot" in m.name]
        on_demand = [m for m in topology.machines if "-od" in m.name]
        assert spot and on_demand
        mean_spot = sum(m.cpu_rate for m in spot) / len(spot)
        mean_od = sum(m.cpu_rate for m in on_demand) / len(on_demand)
        assert mean_spot < mean_od

    def test_cores_share_node_speed(self):
        topology = multicore_nodes(racks=1, nodes_per_rack=2, cores_per_node=4)
        machines = topology.machines
        assert len({m.cpu_rate for m in machines[:4]}) == 1
        assert len({m.cpu_rate for m in machines[4:]}) == 1
        assert machines[0].cpu_rate != machines[4].cpu_rate


class TestSpecParsing:
    def test_defaults(self):
        topology = build_generated("fat_tree")
        assert topology.num_machines == 4 * 4 * 8

    def test_kwargs_and_seed(self):
        topology = build_generated("multi_rack:racks=2,hosts_per_rack=3,seed=9")
        assert topology.num_machines == 6
        again = build_generated("multi_rack:racks=2,hosts_per_rack=3,seed=9")
        assert [m.cpu_rate for m in topology.machines] == [
            m.cpu_rate for m in again.machines
        ]

    def test_float_values(self):
        topology = build_generated("cloud_spot_mix:spot_fraction=0.0")
        assert all("-od" in m.name for m in topology.machines)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError, match="unknown generator"):
            build_generated("mesh")

    def test_bad_argument_shapes_rejected(self):
        with pytest.raises(ValidationError, match="key=value"):
            build_generated("fat_tree:pods")
        with pytest.raises(ValidationError, match="numbers"):
            build_generated("fat_tree:pods=three")
        with pytest.raises(ValidationError, match="bad arguments"):
            build_generated("fat_tree:wings=2")
