"""Tests for cluster topology serialization."""

import json

import pytest

from repro.cluster import (
    dumps,
    flat_cluster,
    grid_three_level,
    loads,
    loads_with_params,
    params_from_dict,
    params_to_dict,
    smp_sgi_lan,
    topology_from_dict,
    topology_hash,
    topology_to_dict,
    ucf_testbed,
)
from repro.errors import TopologyError
from repro.model import calibrate


@pytest.mark.parametrize(
    "factory",
    [lambda: ucf_testbed(10), smp_sgi_lan, lambda: grid_three_level(), lambda: flat_cluster(3)],
    ids=["testbed", "fig1", "grid", "flat"],
)
class TestRoundTrip:
    def test_structure_preserved(self, factory):
        original = factory()
        restored = loads(dumps(original))
        assert restored.height == original.height
        assert [m.name for m in restored.machines] == [
            m.name for m in original.machines
        ]
        assert [c.name for c in restored.clusters] == [
            c.name for c in original.clusters
        ]

    def test_specs_preserved_exactly(self, factory):
        original = factory()
        restored = loads(dumps(original))
        for a, b in zip(original.machines, restored.machines):
            assert a == b
        for a, b in zip(original.clusters, restored.clusters):
            assert a.network == b.network

    def test_calibration_identical(self, factory):
        original = factory()
        restored = loads(dumps(original))
        p_original = calibrate(original)
        p_restored = calibrate(restored)
        assert p_original.g == p_restored.g
        assert p_original.r == p_restored.r
        assert p_original.L == p_restored.L

    def test_routing_identical(self, factory):
        original = factory()
        restored = loads(dumps(original))
        for a in range(original.num_machines):
            for b in range(original.num_machines):
                if a != b:
                    assert (
                        restored.route(a, b)[0].name == original.route(a, b)[0].name
                    )


class TestDetails:
    def test_pair_multipliers_roundtrip(self):
        topology = ucf_testbed(4)
        topology.set_pair_multiplier(0, 3, 7.5)
        restored = loads(dumps(topology))
        assert restored.pair_multiplier(0, 3) == 7.5

    def test_json_is_valid_and_stable(self):
        text = dumps(ucf_testbed(3))
        data = json.loads(text)
        assert data["schema"] == "repro.cluster/2"
        assert dumps(loads(text)) == text  # fixpoint

    def test_v1_documents_still_load(self):
        # Documents written before the params extension carry /1 and no
        # "params" key; the loader must keep accepting them unchanged.
        data = topology_to_dict(ucf_testbed(3))
        data["schema"] = "repro.cluster/1"
        restored = topology_from_dict(data)
        assert restored.num_machines == 3

    def test_unknown_schema_rejected(self):
        data = topology_to_dict(ucf_testbed(2))
        data["schema"] = "something/else"
        with pytest.raises(TopologyError, match="schema"):
            topology_from_dict(data)

    def test_unknown_node_kind_rejected(self):
        data = topology_to_dict(ucf_testbed(2))
        data["root"]["children"][0]["kind"] = "mystery"
        with pytest.raises(TopologyError, match="kind"):
            topology_from_dict(data)


class TestTopologyHash:
    def test_hex_and_deterministic(self):
        digest = topology_hash(ucf_testbed(4))
        assert digest == topology_hash(ucf_testbed(4))
        assert len(digest) == 64
        int(digest, 16)

    def test_all_source_spellings_agree(self):
        topology = grid_three_level()
        as_dict = topology_to_dict(topology)
        as_text = dumps(topology)
        assert topology_hash(topology) == topology_hash(as_dict)
        assert topology_hash(topology) == topology_hash(as_text)

    def test_dict_key_order_never_matters(self):
        data = topology_to_dict(ucf_testbed(3))
        shuffled = json.loads(
            json.dumps(data, sort_keys=True)
        )  # different insertion order than the writer's
        reversed_order = dict(reversed(list(data.items())))
        assert topology_hash(data) == topology_hash(shuffled)
        assert topology_hash(data) == topology_hash(reversed_order)

    def test_schema_version_never_matters(self):
        # A v1 document (no pair_multipliers key) and its v2
        # re-serialisation describe the same machine.
        data = topology_to_dict(ucf_testbed(3))
        v1 = {k: v for k, v in data.items() if k not in ("pair_multipliers",)}
        v1["schema"] = "repro.cluster/1"
        assert topology_hash(v1) == topology_hash(data)

    def test_structure_discriminates(self):
        hashes = {
            topology_hash(ucf_testbed(3)),
            topology_hash(ucf_testbed(4)),
            topology_hash(flat_cluster(3)),
            topology_hash(grid_three_level()),
        }
        assert len(hashes) == 4

    def test_pair_multipliers_discriminate(self):
        plain = ucf_testbed(4)
        degraded = ucf_testbed(4)
        degraded.set_pair_multiplier(0, 3, 7.5)
        assert topology_hash(plain) != topology_hash(degraded)

    def test_embedded_params_discriminate(self):
        topology = ucf_testbed(4)
        params = calibrate(topology)
        assert topology_hash(topology) != topology_hash(topology, params=params)

    def test_params_only_with_live_topology(self):
        data = topology_to_dict(ucf_testbed(2))
        with pytest.raises(TopologyError, match="params"):
            topology_hash(data, params=calibrate(ucf_testbed(2)))

    def test_unknown_schema_rejected(self):
        data = topology_to_dict(ucf_testbed(2))
        data["schema"] = "something/else"
        with pytest.raises(TopologyError, match="schema"):
            topology_hash(data)


class TestParamsRoundTrip:
    def test_embedded_params_roundtrip(self):
        topology = ucf_testbed(4)
        params = calibrate(topology)
        restored_topology, restored = loads_with_params(
            dumps(topology, params=params)
        )
        assert restored is not None
        assert restored_topology.num_machines == topology.num_machines
        assert restored.p == params.p
        assert restored.k == params.k
        assert restored.g == params.g
        assert restored.r == params.r
        assert restored.L == params.L
        assert restored.c == params.c
        assert restored.m == params.m

    def test_loads_with_params_none_when_absent(self):
        topology, params = loads_with_params(dumps(ucf_testbed(2)))
        assert params is None
        assert topology.num_machines == 2

    def test_params_dict_is_json_safe(self):
        params = calibrate(grid_three_level())
        data = params_to_dict(params)
        text = json.dumps(data)  # must not choke on tuple keys
        assert params_from_dict(json.loads(text)).L == params.L
