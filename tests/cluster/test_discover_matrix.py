"""Tests for the probe-matrix representation and analytic synthesis."""

import numpy as np
import pytest

from repro.cluster import ucf_testbed
from repro.cluster.discover import ProbeMatrix, synthesize
from repro.cluster.discover.generators import multi_rack
from repro.errors import DiscoveryError


def _tiny() -> ProbeMatrix:
    lat = np.array([[0.0, 1e-4, 2e-3], [1e-4, 0.0, 2e-3], [2e-3, 2e-3, 0.0]])
    gap = np.full((3, 3), 1e-7)
    np.fill_diagonal(gap, 0.0)
    return ProbeMatrix(names=("a", "b", "c"), latency=lat, gap=gap,
                       speeds=(1e8, 5e7, 2.5e7))


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(DiscoveryError, match="latency must be"):
            ProbeMatrix(names=("a", "b"), latency=np.zeros((3, 3)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(DiscoveryError, match="unique"):
            ProbeMatrix(names=("a", "a"), latency=np.zeros((2, 2)))

    def test_negative_latency_rejected(self):
        lat = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(DiscoveryError, match="non-negative"):
            ProbeMatrix(names=("a", "b"), latency=lat)

    def test_empty_rejected(self):
        with pytest.raises(DiscoveryError, match="at least one"):
            ProbeMatrix(names=(), latency=np.zeros((0, 0)))

    def test_speeds_length_checked(self):
        with pytest.raises(DiscoveryError, match="speeds"):
            ProbeMatrix(names=("a", "b"), latency=np.zeros((2, 2)),
                        speeds=(1.0,))

    def test_gap_shape_checked(self):
        with pytest.raises(DiscoveryError, match="gap must be"):
            ProbeMatrix(names=("a", "b"), latency=np.zeros((2, 2)),
                        gap=np.zeros((3, 3)))


class TestDissimilarity:
    def test_symmetric_zero_diagonal(self):
        lat = np.array([[0.0, 1.0, 4.0], [3.0, 0.0, 6.0], [4.0, 6.0, 5.0]])
        d = ProbeMatrix(names=("a", "b", "c"), latency=lat).dissimilarity()
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0.0)
        assert d[0, 1] == pytest.approx(2.0)  # mean of both directions

    def test_ref_bytes_mixes_gap(self):
        m = _tiny()
        d0 = m.dissimilarity()
        d1 = m.dissimilarity(ref_bytes=1e6)
        assert np.all(d1[~np.eye(3, dtype=bool)] > d0[~np.eye(3, dtype=bool)])

    def test_ref_bytes_without_gap_rejected(self):
        m = ProbeMatrix(names=("a", "b"), latency=np.ones((2, 2)) * 1e-4)
        with pytest.raises(DiscoveryError, match="latency-only"):
            m.dissimilarity(ref_bytes=1.0)


class TestNoise:
    def test_zero_sigma_is_identity(self):
        m = _tiny()
        assert m.with_noise(0.0) is m

    def test_negative_sigma_rejected(self):
        with pytest.raises(DiscoveryError, match="sigma"):
            _tiny().with_noise(-0.1)

    def test_noise_is_symmetric_and_deterministic(self):
        m = _tiny()
        n1 = m.with_noise(0.2, seed=7)
        n2 = m.with_noise(0.2, seed=7)
        n3 = m.with_noise(0.2, seed=8)
        assert np.array_equal(n1.latency, n2.latency)
        assert not np.array_equal(n1.latency, n3.latency)
        # The (i, j) factor equals the (j, i) factor on symmetric input.
        assert np.allclose(n1.latency, n1.latency.T)
        assert np.all(np.diag(n1.latency) == 0.0)

    def test_noise_preserves_speeds(self):
        assert _tiny().with_noise(0.3).speeds == _tiny().speeds


class TestPersistence:
    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_save_load_roundtrip(self, tmp_path, suffix):
        m = _tiny()
        path = tmp_path / f"probe{suffix}"
        m.save(path)
        restored = ProbeMatrix.load(path)
        assert restored.names == m.names
        assert np.allclose(restored.latency, m.latency)
        assert np.allclose(restored.gap, m.gap)
        assert restored.speeds == m.speeds

    def test_latency_only_roundtrip(self, tmp_path):
        m = ProbeMatrix(names=("a", "b"), latency=np.ones((2, 2)) * 1e-4)
        path = tmp_path / "probe.json"
        m.save(path)
        restored = ProbeMatrix.load(path)
        assert restored.gap is None
        assert restored.speeds is None

    def test_unknown_schema_rejected(self):
        with pytest.raises(DiscoveryError, match="schema"):
            ProbeMatrix.from_dict({"schema": "nope/9", "names": ["a"]})


class TestSynthesize:
    def test_block_structure_matches_routes(self):
        topology = ucf_testbed(6)
        m = synthesize(topology)
        assert m.p == 6
        for a in range(6):
            for b in range(6):
                if a == b:
                    assert m.latency[a, b] == 0.0
                else:
                    net, _level = topology.route(a, b)
                    assert m.latency[a, b] == net.latency

    def test_gap_is_inject_plus_drain(self):
        topology = ucf_testbed(4)
        m = synthesize(topology)
        machines = topology.machines
        for a in range(4):
            for b in range(4):
                if a == b:
                    continue
                net, _ = topology.route(a, b)
                expected = (
                    max(net.gap, machines[a].nic_gap)
                    + max(net.gap, machines[b].nic_gap)
                )
                assert m.gap[a, b] == pytest.approx(expected)

    def test_speeds_are_true_cpu_rates(self):
        topology = multi_rack(racks=2, hosts_per_rack=3, seed=5)
        m = synthesize(topology)
        assert m.speeds == tuple(x.cpu_rate for x in topology.machines)

    def test_dtype_and_gap_options(self):
        topology = multi_rack(racks=2, hosts_per_rack=2)
        m = synthesize(topology, dtype=np.float32, include_gap=False)
        assert m.latency.dtype == np.float32
        assert m.gap is None

    def test_noise_applied_when_requested(self):
        topology = multi_rack(racks=2, hosts_per_rack=2)
        clean = synthesize(topology)
        noisy = synthesize(topology, noise=0.2, seed=3)
        assert not np.array_equal(clean.latency, noisy.latency)
