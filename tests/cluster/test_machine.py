"""Unit tests for repro.cluster.machine."""

import pytest

from repro.cluster import MachineSpec
from repro.errors import ValidationError


class TestValidation:
    def test_defaults_valid(self):
        spec = MachineSpec("box")
        assert spec.cpu_rate > 0

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            MachineSpec("")

    @pytest.mark.parametrize("field", ["cpu_rate", "nic_gap"])
    def test_positive_fields(self, field):
        with pytest.raises(ValidationError):
            MachineSpec("box", **{field: 0})

    @pytest.mark.parametrize("field", ["pack_cost", "unpack_cost", "msg_overhead"])
    def test_non_negative_fields(self, field):
        with pytest.raises(ValidationError):
            MachineSpec("box", **{field: -1})
        MachineSpec("box", **{field: 0})  # zero is fine

    def test_frozen(self):
        spec = MachineSpec("box")
        with pytest.raises(Exception):
            spec.cpu_rate = 5  # type: ignore[misc]


class TestTimings:
    def test_compute_time(self):
        spec = MachineSpec("box", cpu_rate=1e6)
        assert spec.compute_time(2e6) == pytest.approx(2.0)

    def test_compute_time_rejects_negative(self):
        with pytest.raises(ValidationError):
            MachineSpec("box").compute_time(-1)

    def test_pack_time_includes_overhead(self):
        spec = MachineSpec("box", cpu_rate=1e6, pack_cost=1.0, msg_overhead=1000.0)
        assert spec.pack_time(0) == pytest.approx(1e-3)
        assert spec.pack_time(1000) == pytest.approx(2e-3)

    def test_unpack_time_no_overhead(self):
        spec = MachineSpec("box", cpu_rate=1e6, unpack_cost=0.5)
        assert spec.unpack_time(0) == 0.0
        assert spec.unpack_time(2000) == pytest.approx(1e-3)

    def test_slower_cpu_packs_slower(self):
        fast = MachineSpec("fast", cpu_rate=1e8)
        slow = MachineSpec("slow", cpu_rate=2.5e7)
        assert slow.pack_time(10_000) > fast.pack_time(10_000)

    def test_pack_costlier_than_unpack_by_default(self):
        spec = MachineSpec("box")
        assert spec.pack_time(100_000) > spec.unpack_time(100_000)


class TestDerived:
    def test_scaled_speeds_up_cpu_and_nic(self):
        base = MachineSpec("box", cpu_rate=1e7, nic_gap=1e-7)
        faster = base.scaled(2.0)
        assert faster.cpu_rate == pytest.approx(2e7)
        assert faster.nic_gap == pytest.approx(5e-8)

    def test_scaled_renames(self):
        assert MachineSpec("box").scaled(2.0).name == "boxx2"
        assert MachineSpec("box").scaled(2.0, name="other").name == "other"

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            MachineSpec("box").scaled(0)

    def test_slowness_vs(self):
        spec = MachineSpec("box", nic_gap=2e-7)
        assert spec.slowness_vs(8e-8) == pytest.approx(2.5)

    def test_slowness_vs_rejects_zero(self):
        with pytest.raises(ValidationError):
            MachineSpec("box").slowness_vs(0)
