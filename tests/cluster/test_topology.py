"""Unit tests for repro.cluster.topology."""

import pytest

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.cluster.presets import ETHERNET_100, SMP_BUS, CAMPUS_ATM
from repro.errors import RoutingError, TopologyError


def machines(*names, **kwargs):
    return [MachineSpec(name, **kwargs) for name in names]


@pytest.fixture
def flat():
    return ClusterTopology(Cluster("lan", ETHERNET_100, machines("a", "b", "c")))


@pytest.fixture
def nested():
    inner0 = Cluster("smp", SMP_BUS, machines("s0", "s1"))
    inner1 = Cluster("lan", ETHERNET_100, machines("l0", "l1", "l2"))
    return ClusterTopology(Cluster("campus", CAMPUS_ATM, [inner0, inner1]))


class TestConstruction:
    def test_flat_height_one(self, flat):
        assert flat.height == 1
        assert flat.num_machines == 3

    def test_nested_height_two(self, nested):
        assert nested.height == 2
        assert nested.num_machines == 5

    def test_bare_machine_wrapped(self):
        topo = ClusterTopology(MachineSpec("solo"))
        assert topo.num_machines == 1
        assert topo.height == 1

    def test_empty_cluster_rejected(self):
        with pytest.raises(TopologyError, match="no children"):
            Cluster("empty", ETHERNET_100, [])

    def test_duplicate_machine_names_rejected(self):
        with pytest.raises(TopologyError, match="duplicate machine"):
            ClusterTopology(Cluster("lan", ETHERNET_100, machines("a", "a")))

    def test_duplicate_cluster_names_rejected(self):
        c0 = Cluster("same", ETHERNET_100, machines("a"))
        c1 = Cluster("same", ETHERNET_100, machines("b"))
        with pytest.raises(TopologyError, match="duplicate cluster"):
            ClusterTopology(Cluster("root", CAMPUS_ATM, [c0, c1]))

    def test_invalid_child_type_rejected(self):
        with pytest.raises(TopologyError, match="invalid child"):
            Cluster("lan", ETHERNET_100, ["not-a-machine"])  # type: ignore[list-item]

    def test_invalid_network_rejected(self):
        with pytest.raises(TopologyError, match="NetworkSpec"):
            Cluster("lan", "ethernet", machines("a"))  # type: ignore[arg-type]

    def test_machine_order_is_declaration_order(self, nested):
        assert [m.name for m in nested.machines] == ["s0", "s1", "l0", "l1", "l2"]


class TestLookup:
    def test_machine_id_roundtrip(self, nested):
        for i, machine in enumerate(nested.machines):
            assert nested.machine_id(machine.name) == i

    def test_machine_id_unknown_raises(self, flat):
        with pytest.raises(TopologyError, match="no machine"):
            flat.machine_id("ghost")

    def test_cluster_id_unknown_raises(self, flat):
        with pytest.raises(TopologyError, match="no cluster"):
            flat.cluster_id("ghost")

    def test_members_of_root_is_everything(self, nested):
        assert nested.members("campus") == (0, 1, 2, 3, 4)

    def test_members_of_inner(self, nested):
        assert nested.members("smp") == (0, 1)
        assert nested.members("lan") == (2, 3, 4)

    def test_cluster_level(self, nested):
        assert nested.cluster_level("campus") == 2
        assert nested.cluster_level("smp") == 1

    def test_child_clusters(self, nested):
        root = nested.cluster_id("campus")
        children = nested.child_clusters(root)
        assert [nested.clusters[c].name for c in children] == ["smp", "lan"]

    def test_machine_cluster(self, nested):
        assert nested.clusters[nested.machine_cluster(0)].name == "smp"
        assert nested.clusters[nested.machine_cluster(4)].name == "lan"

    def test_ancestors_root_first(self, nested):
        chain = nested.ancestors(3)
        names = [nested.clusters[c].name for c in chain]
        assert names == ["campus", "lan"]


class TestSpeedQueries:
    def test_fastest_by_cpu(self):
        topo = ClusterTopology(
            Cluster(
                "lan",
                ETHERNET_100,
                [MachineSpec("slow", cpu_rate=1e7), MachineSpec("fast", cpu_rate=1e8)],
            )
        )
        assert topo.machines[topo.fastest()].name == "fast"
        assert topo.machines[topo.slowest()].name == "slow"

    def test_tie_broken_by_nic_then_name(self):
        topo = ClusterTopology(
            Cluster(
                "lan",
                ETHERNET_100,
                [
                    MachineSpec("b", cpu_rate=1e8, nic_gap=1e-7),
                    MachineSpec("a", cpu_rate=1e8, nic_gap=1e-7),
                    MachineSpec("c", cpu_rate=1e8, nic_gap=9e-8),
                ],
            )
        )
        assert topo.machines[topo.fastest()].name == "c"  # faster NIC wins tie
        assert topo.speed_ranking()[1] == topo.machine_id("a")  # then name order

    def test_fastest_within_cluster(self, nested):
        lan_fastest = nested.fastest("lan")
        assert lan_fastest in nested.members("lan")

    def test_coordinator_is_fastest_member(self, nested):
        assert nested.coordinator("lan") == nested.fastest("lan")

    def test_speed_ranking_is_permutation(self, nested):
        assert sorted(nested.speed_ranking()) == list(range(5))

    def test_min_nic_gap(self, nested):
        assert nested.min_nic_gap() == min(m.nic_gap for m in nested.machines)


class TestRouting:
    def test_same_cluster_uses_local_network(self, nested):
        net, level = nested.route(0, 1)
        assert net.name == "smp-bus"
        assert level == 1

    def test_cross_cluster_uses_backbone(self, nested):
        net, level = nested.route(0, 2)
        assert net.name == "campus-atm"
        assert level == 2

    def test_route_symmetric(self, nested):
        assert nested.route(1, 4) == nested.route(4, 1)

    def test_lca_of_same_machine_is_own_cluster(self, nested):
        assert nested.clusters[nested.lca_cluster(2, 2)].name == "lan"

    def test_route_out_of_range_raises(self, nested):
        with pytest.raises(RoutingError):
            nested.lca_cluster(0, 99)

    def test_pair_multiplier_default_one(self, nested):
        assert nested.pair_multiplier(0, 3) == 1.0

    def test_pair_multiplier_symmetric(self, nested):
        nested.set_pair_multiplier(0, 3, 2.5)
        assert nested.pair_multiplier(0, 3) == 2.5
        assert nested.pair_multiplier(3, 0) == 2.5

    def test_pair_multiplier_validation(self, nested):
        with pytest.raises(TopologyError):
            nested.set_pair_multiplier(0, 0, 2.0)
        with pytest.raises(TopologyError):
            nested.set_pair_multiplier(0, 1, 0.0)


class TestNormalized:
    def test_flat_is_unchanged_in_shape(self, flat):
        norm = flat.normalized()
        assert norm.height == flat.height
        assert [m.name for m in norm.machines] == [m.name for m in flat.machines]

    def test_irregular_leaf_gets_wrapped(self):
        # A machine attached directly at the top level (like Fig. 1's SGI).
        inner = Cluster("lan", ETHERNET_100, machines("l0", "l1"))
        topo = ClusterTopology(
            Cluster("campus", CAMPUS_ATM, [inner, MachineSpec("sgi")])
        )
        norm = topo.normalized()
        sgi = norm.machine_id("sgi")
        chain = norm.ancestors(sgi)
        assert len(chain) == 2  # campus + the singleton wrapper
        wrapper = norm.clusters[chain[-1]]
        assert wrapper.network.sync_cost(1) == 0.0  # self network is free

    def test_normalized_preserves_machine_order(self):
        inner = Cluster("lan", ETHERNET_100, machines("l0", "l1"))
        topo = ClusterTopology(
            Cluster("campus", CAMPUS_ATM, [MachineSpec("front"), inner])
        )
        norm = topo.normalized()
        assert [m.name for m in norm.machines] == ["front", "l0", "l1"]

    def test_normalized_preserves_routing(self):
        inner = Cluster("lan", ETHERNET_100, machines("l0", "l1"))
        topo = ClusterTopology(
            Cluster("campus", CAMPUS_ATM, [inner, MachineSpec("sgi")])
        )
        norm = topo.normalized()
        a, b = norm.machine_id("l0"), norm.machine_id("sgi")
        net, level = norm.route(a, b)
        assert net.name == "campus-atm"
        assert level == 2

    def test_pair_multipliers_carried_over(self, nested):
        nested.set_pair_multiplier(0, 4, 3.0)
        norm = nested.normalized()
        assert norm.pair_multiplier(0, 4) == 3.0


class TestExports:
    def test_to_networkx_is_tree(self, nested):
        import networkx as nx

        graph = nested.to_networkx()
        assert nx.is_tree(graph.to_undirected())
        machines_count = sum(
            1 for _n, d in graph.nodes(data=True) if d["kind"] == "machine"
        )
        assert machines_count == nested.num_machines

    def test_describe_mentions_everything(self, nested):
        text = nested.describe()
        for machine in nested.machines:
            assert machine.name in text
        for cluster in nested.clusters:
            assert cluster.name in text
