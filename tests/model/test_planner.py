"""Tests for the cost-model planner."""

import pytest

from repro.cluster import flat_cluster, smp_sgi_lan, ucf_testbed
from repro.collectives import run_broadcast
from repro.errors import ModelError
from repro.model import best_broadcast_phases, best_root, calibrate, hierarchy_penalty

N = 25_600


class TestBestBroadcastPhases:
    def test_one_phase_for_p2(self):
        params = calibrate(flat_cluster(2))
        phases, _ledger = best_broadcast_phases(params, N)
        assert phases == {1: "one"}

    def test_two_phase_for_p10(self):
        params = calibrate(flat_cluster(10))
        phases, _ledger = best_broadcast_phases(params, N)
        assert phases == {1: "two"}

    def test_plan_covers_every_level(self, fig1_params):
        phases, _ledger = best_broadcast_phases(fig1_params, N)
        assert set(phases) == {1, 2}
        assert set(phases.values()) <= {"one", "two"}

    def test_plan_is_optimal_among_combos(self, fig1_params):
        from repro.model.predict import predict_broadcast

        phases, ledger = best_broadcast_phases(fig1_params, N)
        for combo in (
            {1: "one", 2: "one"},
            {1: "one", 2: "two"},
            {1: "two", 2: "one"},
            {1: "two", 2: "two"},
        ):
            assert ledger.total <= predict_broadcast(fig1_params, N, phases=combo).total

    def test_plan_beats_naive_in_simulation(self):
        """The planned configuration is at least as good as all-one-phase
        when actually simulated."""
        topology = ucf_testbed(10)
        params = calibrate(topology)
        phases, _ledger = best_broadcast_phases(params, N)
        planned = run_broadcast(topology, N, phases=phases)
        naive = run_broadcast(topology, N, phases="one")
        assert planned.time <= naive.time * 1.01

    def test_k0_rejected(self):
        params = calibrate(ucf_testbed(1))
        # k = 1 even for one machine (it sits in a cluster); build a
        # fake k=0 check via the guard directly.
        phases, _ = best_broadcast_phases(params, N)
        assert phases == {1: "one"} or phases == {1: "two"}


class TestBestRoot:
    def test_gather_prefers_fastest(self, testbed_params):
        root, _ledger = best_root(testbed_params, N, collective="gather")
        assert root == testbed_params.fastest_index(0)

    def test_broadcast_root_is_near_tie(self, testbed_params):
        """The paper's Fig. 4(a) finding, seen through the planner: the
        best and worst roots differ by little."""
        from repro.model.predict import predict_broadcast

        best_pid, best_ledger = best_root(testbed_params, N, collective="broadcast")
        worst = max(
            predict_broadcast(testbed_params, N, root=r).total
            for r in range(testbed_params.p)
        )
        assert worst / best_ledger.total < 1.5

    def test_unknown_collective_rejected(self, testbed_params):
        with pytest.raises(ModelError):
            best_root(testbed_params, N, collective="sort")


class TestHierarchyPenalty:
    def test_flat_machine_no_penalty(self, testbed_params):
        report = hierarchy_penalty(testbed_params, N)
        assert report["penalty"] == 0.0
        assert report["fraction"] == 0.0

    def test_hbsp2_pays(self, fig1_params):
        report = hierarchy_penalty(fig1_params, N)
        assert report["penalty"] > 0
        assert 0 < report["fraction"] < 1
        assert report["total"] > report["penalty"]

    def test_broadcast_variant(self, fig1_params):
        report = hierarchy_penalty(fig1_params, N, collective="broadcast")
        assert report["penalty"] > 0

    def test_unknown_collective_rejected(self, fig1_params):
        with pytest.raises(ModelError):
            hierarchy_penalty(fig1_params, N, collective="scan")
