"""Unit tests for repro.model.predict — the Section-4 closed forms."""

import pytest

from repro.cluster import flat_cluster, multi_lan, smp_sgi_lan, ucf_testbed
from repro.errors import CollectiveError, ModelError
from repro.model import calibrate
from repro.model.predict import (
    default_counts,
    paper_broadcast_hbsp1_one_phase,
    paper_broadcast_hbsp1_two_phase,
    paper_broadcast_hbsp2_super2_one_phase,
    paper_broadcast_hbsp2_super2_two_phase,
    paper_gather_hbsp1,
    paper_gather_hbsp2_super2,
    predict_broadcast,
    predict_gather,
)

N = 25_600  # 100 KB of ints


class TestDefaultCounts:
    def test_conserves_n(self, testbed_params):
        assert sum(default_counts(testbed_params, N)) == N

    def test_proportional_to_c(self, testbed_params):
        counts = default_counts(testbed_params, N)
        for j, count in enumerate(counts):
            assert abs(count - testbed_params.c_of(0, j) * N) < 1.0


class TestPredictGatherHBSP1:
    def test_one_superstep(self, testbed_params):
        ledger = predict_gather(testbed_params, N)
        assert ledger.num_supersteps() == 1
        assert ledger.steps[0].level == 1

    def test_close_to_paper_formula(self, testbed_params):
        """Balanced gather ≈ g·n + L (the paper upper-bounds the root's
        receive volume by n; the exact h-relation excludes the root's
        own share, so exact <= paper)."""
        exact = predict_gather(testbed_params, N).total
        paper = paper_gather_hbsp1(testbed_params, N)
        assert exact <= paper
        assert exact >= 0.5 * paper

    def test_oversized_share_dominates(self, testbed_params):
        """Section 4.2: if r_j*c_j is too large, the sender dominates."""
        balanced = predict_gather(testbed_params, N).total
        slow = testbed_params.slowest_index(0)
        counts = [0] * testbed_params.p
        counts[slow] = N  # everything on the slowest sender
        oversized = predict_gather(testbed_params, N, counts=counts).total
        assert oversized > balanced

    def test_counts_must_conserve(self, testbed_params):
        with pytest.raises(CollectiveError, match="sum"):
            predict_gather(testbed_params, N, counts=[1] * testbed_params.p)

    def test_single_processor_free(self):
        params = calibrate(ucf_testbed(1))
        assert predict_gather(params, N).total == 0.0

    def test_bad_root_rejected(self, testbed_params):
        with pytest.raises(CollectiveError):
            predict_gather(testbed_params, N, root=99)

    def test_negative_n_rejected(self, testbed_params):
        with pytest.raises(CollectiveError):
            predict_gather(testbed_params, -1)


class TestPredictGatherHBSP2:
    def test_two_supersteps(self, fig1_params):
        ledger = predict_gather(fig1_params, N)
        assert ledger.num_supersteps(1) == 1
        assert ledger.num_supersteps(2) == 1

    def test_super2_close_to_paper(self, fig1_params):
        ledger = predict_gather(fig1_params, N)
        super2 = next(s for s in ledger.steps if s.level == 2)
        paper = paper_gather_hbsp2_super2(fig1_params, N)
        assert super2.total <= paper
        assert super2.total >= 0.4 * paper

    def test_hierarchy_penalty_positive(self, fig1_params):
        assert predict_gather(fig1_params, N).hierarchy_penalty() > 0

    def test_root_override_changes_cost(self, fig1_params):
        default = predict_gather(fig1_params, N).total
        # Re-root on the slowest processor.
        slow = fig1_params.slowest_index(0)
        rerooted = predict_gather(fig1_params, N, root=slow).total
        assert rerooted != pytest.approx(default)


class TestPredictBroadcastHBSP1:
    def test_two_phase_has_one_charge_with_two_L(self, testbed_params):
        ledger = predict_broadcast(testbed_params, N, phases="two")
        step = ledger.steps[0]
        assert step.L == pytest.approx(2 * testbed_params.L_of(1, 0))

    def test_two_phase_close_to_paper(self, testbed_params):
        exact = predict_broadcast(testbed_params, N, phases="two").total
        paper = paper_broadcast_hbsp1_two_phase(testbed_params, N)
        assert exact <= paper * 1.01
        assert exact >= 0.4 * paper

    def test_one_phase_matches_paper_shape(self, testbed_params):
        exact = predict_broadcast(testbed_params, N, phases="one").total
        paper = paper_broadcast_hbsp1_one_phase(testbed_params, N)
        # paper formula uses m sends; exact uses m-1 (no self-send).
        assert exact < paper
        assert exact > 0.7 * paper

    def test_two_phase_beats_one_phase_at_scale(self):
        params = calibrate(flat_cluster(10))
        one = predict_broadcast(params, N, phases="one").total
        two = predict_broadcast(params, N, phases="two").total
        assert two < one

    def test_one_phase_beats_two_phase_at_p2(self):
        params = calibrate(flat_cluster(2))
        one = predict_broadcast(params, N, phases="one").total
        two = predict_broadcast(params, N, phases="two").total
        assert one < two

    def test_zero_items_free(self, testbed_params):
        assert predict_broadcast(testbed_params, 0).total == 0.0

    def test_bad_phase_rejected(self, testbed_params):
        with pytest.raises(CollectiveError):
            predict_broadcast(testbed_params, N, phases="three")

    def test_balanced_fractions_change_cost(self, testbed_params):
        fractions = [testbed_params.c_of(0, j) for j in range(testbed_params.p)]
        equal = predict_broadcast(testbed_params, N, phases="two").total
        balanced = predict_broadcast(
            testbed_params, N, phases="two", fractions=fractions
        ).total
        # Both near each other — broadcasting can't exploit heterogeneity.
        assert balanced == pytest.approx(equal, rel=0.2)


class TestPredictBroadcastHBSP2:
    def test_per_level_phases(self, fig1_params):
        ledger = predict_broadcast(fig1_params, N, phases={2: "one", 1: "two"})
        labels = [s.label for s in ledger.steps]
        assert any("one-phase" in label and "super2" in label for label in labels)
        assert any("two-phase" in label and "super1" in label for label in labels)

    def test_levels_descend(self, fig1_params):
        ledger = predict_broadcast(fig1_params, N)
        levels = [s.level for s in ledger.steps]
        assert levels == sorted(levels, reverse=True)

    def test_regime_split_matches_paper(self):
        """Section 4.4: one-phase wins iff r_{1,s} > m_{2,0} (roughly)."""
        n = 128_000
        # Slow LANs -> r_1s = 20 > m = 2: one-phase wins.
        from repro.cluster import Cluster, ClusterTopology, MachineSpec
        from repro.cluster.presets import CAMPUS_ATM, ETHERNET_100

        def campus(worst_r, lans):
            out = []
            for i in range(lans):
                factor = worst_r ** (i / max(1, lans - 1))
                out.append(
                    Cluster(
                        f"lan{i}",
                        ETHERNET_100,
                        [
                            MachineSpec(f"l{i}m{j}", cpu_rate=1e8 / factor, nic_gap=8e-8 * factor)
                            for j in range(3)
                        ],
                    )
                )
            return ClusterTopology(Cluster("campus", CAMPUS_ATM, out))

        slow_params = calibrate(campus(20.0, 2))
        one = paper_broadcast_hbsp2_super2_one_phase(slow_params, n)
        two = paper_broadcast_hbsp2_super2_two_phase(slow_params, n)
        assert one < two  # r_1s > m: one-phase wins

        wide_params = calibrate(campus(1.25, 8))
        one = paper_broadcast_hbsp2_super2_one_phase(wide_params, n)
        two = paper_broadcast_hbsp2_super2_two_phase(wide_params, n)
        assert two < one  # r_1s << m: two-phase wins


class TestPaperFormulaGuards:
    def test_hbsp1_formulas_reject_wrong_k(self, fig1_params):
        with pytest.raises(ModelError):
            paper_gather_hbsp1(fig1_params, N)
        with pytest.raises(ModelError):
            paper_broadcast_hbsp1_two_phase(fig1_params, N)

    def test_hbsp2_formulas_reject_wrong_k(self, testbed_params):
        with pytest.raises(ModelError):
            paper_gather_hbsp2_super2(testbed_params, N)
        with pytest.raises(ModelError):
            paper_broadcast_hbsp2_super2_one_phase(testbed_params, N)
