"""Unit tests for repro.model.cost."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.model import CostLedger, h_relation, superstep_cost


class TestHRelation:
    def test_empty_is_zero(self):
        assert h_relation([]) == 0.0

    def test_single(self):
        assert h_relation([(2.0, 100.0)]) == 200.0

    def test_max_of_products(self):
        # The slower machine with less data can still dominate.
        assert h_relation([(1.0, 100.0), (3.0, 50.0)]) == 150.0

    def test_r_below_one_rejected(self):
        with pytest.raises(ModelError):
            h_relation([(0.5, 10.0)])

    def test_negative_h_rejected(self):
        with pytest.raises(ValidationError):
            h_relation([(1.0, -1.0)])

    def test_balanced_workload_bound(self):
        """Section 4.2: with r_j*c_j < 1, the root's receive dominates."""
        n = 1000.0
        loads = [(1.0, n)]  # root receives n
        for r, c in [(1.5, 0.2), (2.0, 0.1), (1.2, 0.3)]:
            assert r * c < 1
            loads.append((r, c * n))
        assert h_relation(loads) == n  # g*h = g*n, the paper's result


class TestSuperstepCost:
    def test_equation_one(self):
        # T = w + g*h + L
        assert superstep_cost(1.0, 2.0, 3.0, 4.0) == pytest.approx(11.0)

    def test_zero_everything(self):
        assert superstep_cost(0, 0, 0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            superstep_cost(-1, 0, 0, 0)


class TestCostLedger:
    def test_total_is_sum_of_steps(self):
        ledger = CostLedger("test")
        ledger.charge("a", level=1, w=1.0, gh=2.0, L=0.5)
        ledger.charge("b", level=2, gh=3.0, L=1.0)
        assert ledger.total == pytest.approx(7.5)

    def test_components(self):
        ledger = CostLedger()
        ledger.charge("a", level=1, w=1.0, gh=2.0, L=0.5)
        ledger.charge("b", level=1, w=0.5, gh=1.0, L=0.25)
        assert ledger.component("w") == pytest.approx(1.5)
        assert ledger.component("gh") == pytest.approx(3.0)
        assert ledger.component("L") == pytest.approx(0.75)

    def test_unknown_component_rejected(self):
        with pytest.raises(ModelError):
            CostLedger().component("x")

    def test_charge_step_uses_h_relation(self):
        ledger = CostLedger()
        step = ledger.charge_step(
            "comm", level=1, g=0.1, loads=[(2.0, 100.0)], L=1.0
        )
        assert step.gh == pytest.approx(20.0)
        assert step.total == pytest.approx(21.0)

    def test_hierarchy_penalty(self):
        ledger = CostLedger()
        ledger.charge("s1", level=1, gh=10.0)
        ledger.charge("s2", level=2, gh=5.0, L=1.0)
        ledger.charge("s3", level=3, gh=2.0)
        assert ledger.hierarchy_penalty() == pytest.approx(8.0)

    def test_num_supersteps(self):
        ledger = CostLedger()
        ledger.charge("a", level=1)
        ledger.charge("b", level=1)
        ledger.charge("c", level=2)
        assert ledger.num_supersteps() == 3
        assert ledger.num_supersteps(1) == 2
        assert ledger.num_supersteps(2) == 1

    def test_extend_with_prefix(self):
        inner = CostLedger("inner")
        inner.charge("step", level=1, gh=1.0)
        outer = CostLedger("outer")
        outer.extend(inner, prefix="inner/")
        assert outer.steps[0].label == "inner/step"
        assert outer.total == pytest.approx(1.0)

    def test_negative_level_rejected(self):
        with pytest.raises(ModelError):
            CostLedger().charge("bad", level=-1)

    def test_negative_component_rejected(self):
        with pytest.raises(ValidationError):
            CostLedger().charge("bad", level=1, w=-1.0)

    def test_step_total(self):
        ledger = CostLedger()
        step = ledger.charge("a", level=1, w=1.0, gh=2.0, L=3.0)
        assert step.total == pytest.approx(6.0)

    def test_describe_includes_total_row(self):
        ledger = CostLedger("demo")
        ledger.charge("a", level=1, gh=1.0)
        text = ledger.describe()
        assert "TOTAL" in text
        assert "demo" in text

    def test_empty_ledger_total_zero(self):
        assert CostLedger().total == 0.0
