"""Unit tests for repro.model.params."""

import math

import pytest

from repro.bytemark import simulate_scores
from repro.errors import CalibrationError, ValidationError
from repro.model import HBSPParams, HBSPTree, calibrate


class TestCalibrateTestbed:
    def test_g_is_fastest_nic(self, testbed, testbed_params):
        assert testbed_params.g == testbed.min_nic_gap()

    def test_r_normalised(self, testbed_params):
        values = [testbed_params.r_of(0, j) for j in range(testbed_params.p)]
        assert min(values) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in values)

    def test_c_sums_to_one(self, testbed_params):
        total = math.fsum(testbed_params.c_of(0, j) for j in range(testbed_params.p))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_faster_machine_larger_c(self, testbed, testbed_params):
        rates = [m.cpu_rate for m in testbed.machines]
        cs = [testbed_params.c_of(0, j) for j in range(testbed_params.p)]
        order_by_rate = sorted(range(len(rates)), key=lambda j: -rates[j])
        order_by_c = sorted(range(len(cs)), key=lambda j: -cs[j])
        assert order_by_rate == order_by_c

    def test_L_positive_for_real_clusters(self, testbed_params):
        assert testbed_params.L_of(1, 0) > 0

    def test_m_vector(self, testbed_params):
        assert testbed_params.m == (10, 1)
        assert testbed_params.p == 10

    def test_fan_out(self, testbed_params):
        assert testbed_params.m_of(1, 0) == 10


class TestCalibrateHierarchical:
    def test_cluster_r_is_coordinator_r(self, fig1_machine, fig1_params):
        tree = HBSPTree(fig1_machine)
        for node in tree.level_nodes(1):
            coord_gap = tree.topology.machines[node.coordinator].nic_gap
            assert fig1_params.r_of(1, node.index) == pytest.approx(
                coord_gap / fig1_params.g
            )

    def test_cluster_c_is_member_sum(self, fig1_params):
        for level in range(1, fig1_params.k + 1):
            for j in range(fig1_params.m[level]):
                leaf_sum = math.fsum(
                    fig1_params.c_of(0, leaf)
                    for leaf in fig1_params.leaf_indices(level, j)
                )
                assert fig1_params.c_of(level, j) == pytest.approx(leaf_sum)

    def test_self_wrapper_has_zero_L(self, fig1_params):
        """The wrapped SGI's singleton cluster synchronises for free."""
        # Find the level-1 node with fan-out 1 (the wrapper).
        wrapper_j = next(
            j for j in range(fig1_params.m[1]) if fig1_params.m_of(1, j) == 1
        )
        assert fig1_params.L_of(1, wrapper_j) == 0.0

    def test_root_r_is_one(self, fig1_params):
        """The root coordinator is the fastest machine, so r_{k,0} = 1."""
        assert fig1_params.r_of(2, 0) == pytest.approx(1.0)

    def test_calibrate_with_noisy_scores_changes_c(self, testbed):
        noisy = calibrate(testbed, scores=simulate_scores(testbed, noise_sigma=0.4))
        clean = calibrate(testbed)
        assert any(
            noisy.c_of(0, j) != pytest.approx(clean.c_of(0, j))
            for j in range(noisy.p)
        )

    def test_missing_scores_raise(self, testbed):
        with pytest.raises(CalibrationError, match="missing"):
            calibrate(testbed, scores={"sgi-octane": 1.0})


class TestStructureNavigation:
    def test_children_contiguous(self, fig1_params):
        seen: list[tuple[int, int]] = []
        for j in range(fig1_params.m[2]):
            seen.extend(fig1_params.children_of(2, j))
        assert seen == [(1, j) for j in range(fig1_params.m[1])]

    def test_parent_of_inverse_of_children(self, fig1_params):
        for level in range(1, fig1_params.k + 1):
            for j in range(fig1_params.m[level]):
                for child in fig1_params.children_of(level, j):
                    assert fig1_params.parent_of(*child) == (level, j)

    def test_root_has_no_parent(self, fig1_params):
        assert fig1_params.parent_of(fig1_params.k, 0) is None

    def test_leaf_indices_partition(self, fig1_params):
        leaves: list[int] = []
        for j in range(fig1_params.m[1]):
            leaves.extend(fig1_params.leaf_indices(1, j))
        assert sorted(leaves) == list(range(fig1_params.p))

    def test_leaf_indices_of_leaf(self, fig1_params):
        assert fig1_params.leaf_indices(0, 3) == (3,)


class TestAccessorsAndCopies:
    def test_slowest_r(self, testbed_params):
        assert testbed_params.slowest_r(0) == pytest.approx(1.25, rel=0.01)

    def test_fastest_slowest_index(self, testbed_params):
        assert testbed_params.r_of(0, testbed_params.fastest_index(0)) == 1.0
        assert (
            testbed_params.r_of(0, testbed_params.slowest_index(0))
            == testbed_params.slowest_r(0)
        )

    def test_with_equal_fractions(self, testbed_params):
        equal = testbed_params.with_equal_fractions()
        for j in range(equal.p):
            assert equal.c_of(0, j) == pytest.approx(1 / equal.p)
        # Original untouched (frozen dataclass copy semantics).
        assert testbed_params.c_of(0, 0) != pytest.approx(1 / testbed_params.p)

    def test_with_fractions(self, testbed_params):
        fractions = [0.0] * testbed_params.p
        fractions[0] = 1.0
        custom = testbed_params.with_fractions(fractions)
        assert custom.c_of(0, 0) == 1.0

    def test_with_fractions_wrong_length(self, testbed_params):
        with pytest.raises(ValidationError):
            testbed_params.with_fractions([1.0])

    def test_describe_contains_all_nodes(self, fig1_params):
        text = fig1_params.describe()
        for level in range(fig1_params.k + 1):
            for j in range(fig1_params.m[level]):
                assert f"M_{{{level},{j}}}" in text


class TestValidation:
    def _base_kwargs(self):
        return dict(
            k=1,
            g=1e-7,
            m=(2, 1),
            r={(0, 0): 1.0, (0, 1): 2.0, (1, 0): 1.0},
            L={(1, 0): 0.001},
            c={(0, 0): 0.6, (0, 1): 0.4, (1, 0): 1.0},
            fan_out={(0, 0): 0, (0, 1): 0, (1, 0): 2},
        )

    def test_valid_construction(self):
        HBSPParams(**self._base_kwargs())

    def test_r_below_one_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["r"] = {(0, 0): 0.5, (0, 1): 2.0, (1, 0): 1.0}
        with pytest.raises(ValidationError, match="relative to the fastest"):
            HBSPParams(**kwargs)

    def test_no_fastest_processor_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["r"] = {(0, 0): 1.5, (0, 1): 2.0, (1, 0): 1.5}
        with pytest.raises(ValidationError, match="fastest processor"):
            HBSPParams(**kwargs)

    def test_c_sum_enforced(self):
        kwargs = self._base_kwargs()
        kwargs["c"] = {(0, 0): 0.6, (0, 1): 0.6, (1, 0): 1.2}
        with pytest.raises(ValidationError, match="sum to 1"):
            HBSPParams(**kwargs)

    def test_missing_r_rejected(self):
        kwargs = self._base_kwargs()
        del kwargs["r"][(0, 1)]
        with pytest.raises(ValidationError, match="missing r"):
            HBSPParams(**kwargs)

    def test_negative_L_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["L"] = {(1, 0): -0.1}
        with pytest.raises(ValidationError):
            HBSPParams(**kwargs)

    def test_m_length_mismatch_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["m"] = (2,)
        with pytest.raises(ValidationError):
            HBSPParams(**kwargs)
