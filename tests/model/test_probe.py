"""Tests for empirical parameter probing (bsp_probe analogue)."""

import numpy as np
import pytest

from repro.cluster import flat_cluster, smp_sgi_lan, two_lans, ucf_testbed
from repro.cluster.discover import discover, exact_recovery, topology_partitions
from repro.model import calibrate, probe_link, probe_matrix, probe_params, probe_sync


class TestProbeSync:
    def test_flat_matches_calibrated_L_exactly(self):
        """Empty supersteps on a flat machine cost exactly L."""
        topology = ucf_testbed(5)
        params = calibrate(topology)
        assert probe_sync(topology) == pytest.approx(params.L_of(1, 0), rel=1e-6)

    def test_level_scoped_sync_cheaper(self):
        topology = smp_sgi_lan()
        assert probe_sync(topology, level=1) < probe_sync(topology)

    def test_global_sync_matches_root_L(self):
        topology = smp_sgi_lan()
        params = calibrate(topology)
        assert probe_sync(topology) == pytest.approx(params.L_of(2, 0), rel=1e-6)

    def test_rounds_validated(self):
        with pytest.raises(Exception):
            probe_sync(ucf_testbed(2), rounds=0)


class TestProbeLink:
    def test_gap_positive_and_latency_in_overhead(self):
        estimate = probe_link(ucf_testbed(3), 1, 0)
        assert estimate.gap > 0
        # Overhead includes wire latency (1.5e-4) + per-message costs.
        assert estimate.overhead > 1e-4

    def test_gap_at_least_wire_speed(self):
        """The probed per-byte time can't beat the physical path: it
        includes inject + drain, each at >= the wire gap."""
        topology = ucf_testbed(3)
        estimate = probe_link(topology, 1, 0)
        wire = topology.route(1, 0)[0].gap
        assert estimate.gap >= 2 * wire * 0.99

    def test_slower_sender_larger_gap(self):
        topology = ucf_testbed(5)
        fast_sender = probe_link(topology, 1, 0)
        slow_sender = probe_link(topology, 4, 0)
        assert slow_sender.gap > fast_sender.gap

    def test_same_machine_rejected(self):
        with pytest.raises(ValueError):
            probe_link(ucf_testbed(2), 0, 0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            probe_link(ucf_testbed(2), 0, 1, small=100, large=100)


class TestProbeParams:
    def test_reference_has_r_one(self):
        topology = ucf_testbed(4)
        report = probe_params(topology)
        assert min(report.r.values()) == pytest.approx(1.0)
        assert report.r[topology.fastest()] == pytest.approx(1.0, rel=0.05)

    def test_r_ordering_matches_calibration(self):
        topology = ucf_testbed(5)
        report = probe_params(topology)
        params = calibrate(topology)
        probed_order = sorted(report.r, key=lambda j: report.r[j])
        calibrated_order = sorted(range(5), key=lambda j: params.r_of(0, j))
        assert probed_order == calibrated_order

    def test_effective_g_at_least_spec_g(self):
        """Probing measures the full path, so effective g >= spec g."""
        topology = ucf_testbed(4)
        report = probe_params(topology)
        params = calibrate(topology)
        assert report.g >= params.g

    def test_probed_L_matches_calibration(self):
        topology = smp_sgi_lan()
        report = probe_params(topology)
        params = calibrate(topology)
        # The root's L is probed exactly; level-1 probes report the
        # slowest cluster at that level.
        assert report.L[(2, 0)] == pytest.approx(params.L_of(2, 0), rel=1e-6)
        worst_l1 = max(params.L_of(1, j) for j in range(params.m[1]))
        assert report.L[(1, 0)] == pytest.approx(worst_l1, rel=1e-6)

    def test_homogeneous_machine_probes_flat(self):
        topology = flat_cluster(4, slowdown=1.0, nic_slowdown=1.0)
        report = probe_params(topology)
        assert max(report.r.values()) == pytest.approx(1.0, rel=0.02)


class TestProbeMatrix:
    def test_single_run_agrees_with_per_link_probes(self):
        """The batched all-pairs campaign measures what probe_link does."""
        topology = ucf_testbed(4)
        matrix = probe_matrix(topology)
        assert matrix.p == 4
        for i in range(4):
            for j in range(4):
                if i == j:
                    assert matrix.latency[i, j] == 0.0
                    continue
                estimate = probe_link(topology, i, j)
                # The per-message cost matches probe_link's overhead
                # exactly; the per-byte gap runs a few percent high
                # because the receiver's drain lands inside the shared
                # barrier of the batched campaign.
                assert matrix.latency[i, j] == pytest.approx(
                    estimate.overhead, rel=1e-9
                )
                assert estimate.gap <= matrix.gap[i, j] <= estimate.gap * 1.15

    def test_latency_reflects_route_level(self):
        topology = two_lans(3)
        matrix = probe_matrix(topology)
        same_lan = matrix.latency[0, 1]
        cross_lan = matrix.latency[0, 3]
        assert cross_lan > same_lan * 5  # backbone is an order slower

    def test_speeds_are_declared_rates(self):
        topology = ucf_testbed(3)
        matrix = probe_matrix(topology)
        assert matrix.speeds == tuple(m.cpu_rate for m in topology.machines)

    def test_single_machine_matrix_is_zero(self):
        matrix = probe_matrix(flat_cluster(1))
        assert matrix.p == 1
        assert np.all(matrix.latency == 0.0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: two_lans(3),
            lambda: two_lans(3, slowdown=1.0, nic_slowdown=1.0),
            smp_sgi_lan,
        ],
        ids=["two-lans", "two-lans-homogeneous", "fig1"],
    )
    def test_discover_from_measured_matrix(self, factory):
        """Hierarchy inference works on *measured* (not synthesized)
        matrices: the full Estefanel-Mounié loop on the simulator."""
        topology = factory()
        result = discover(probe_matrix(topology))
        truth = topology_partitions(topology.normalized())
        # Measured levels may be refined (a declared level mixing two
        # physical speeds splits), so require the truth partitions to
        # appear among the recovered ones rather than strict equality.
        recovered = set(result.partitions)
        missing = [level for level in truth if tuple(level) not in recovered]
        assert not missing, f"measured discovery lost levels: {missing}"

    def test_two_lans_exact_from_measurement(self):
        topology = two_lans(3, slowdown=1.0, nic_slowdown=1.0)
        result = discover(probe_matrix(topology))
        assert exact_recovery(
            topology_partitions(topology), result.partitions
        )
