"""Bit-identity of the plan evaluators: kernels vs scalar vs legacy.

Three layers price a :class:`~repro.tuning.plan.SchedulePlan` and all
must agree exactly (every float, label, and level — no tolerances):

* ``predict_gather_plan`` / ``predict_broadcast_plan`` — the scalar
  reference;
* ``GatherKernel.evaluate_plans`` / ``BroadcastKernel.evaluate_plans``
  — the vectorized grids the tuner prices candidate spaces with;
* on the *default* plan, the plan-less ``predict_gather`` /
  ``predict_broadcast`` — so a tuned run whose winner is the paper's
  schedule costs exactly what an untuned run does.

The hypothesis section drives all three over random k<=3 machines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.cluster.presets import grid_three_level, smp_sgi_lan, ucf_testbed
from repro.errors import CollectiveError, ModelError
from repro.model.kernels import BroadcastKernel, GatherKernel
from repro.model.params import calibrate
from repro.model.predict import (
    predict_broadcast,
    predict_broadcast_plan,
    predict_gather,
    predict_gather_plan,
)
from repro.model.planner import rank_plans, score_plans
from repro.tuning import SchedulePlan, default_plan, enumerate_plans

from tests.model.test_kernels import assert_ledger_identical

NS = [0, 1, 7, 1000, 25_600]


@pytest.fixture(scope="module")
def params_by_name():
    return {
        "testbed": calibrate(ucf_testbed(6)),
        "fig1": calibrate(smp_sgi_lan()),
        "grid3": calibrate(grid_three_level(2, 2, 2)),
    }


# ---------------------------------------------------------------------------
# Random k<=3 machines (bounded sizes so each example stays cheap)
# ---------------------------------------------------------------------------

_counter = 0


def _name(prefix):
    global _counter
    _counter += 1
    return f"{prefix}{_counter}"


@st.composite
def machine(draw):
    return MachineSpec(
        _name("m"),
        cpu_rate=draw(st.floats(min_value=1e7, max_value=1e8)),
        nic_gap=draw(st.floats(min_value=8e-8, max_value=2e-7)),
    )


@st.composite
def network(draw):
    return NetworkSpec(
        _name("net"),
        gap=draw(st.floats(min_value=0, max_value=2e-7)),
        latency=draw(st.floats(min_value=0, max_value=1e-3)),
        sync_base=draw(st.floats(min_value=0, max_value=1e-3)),
    )


@st.composite
def tree(draw, depth):
    if depth == 1:
        members = [draw(machine()) for _ in range(draw(st.integers(1, 4)))]
        return Cluster(_name("lan"), draw(network()), members)
    children = [
        draw(tree(depth=depth - 1)) for _ in range(draw(st.integers(1, 3)))
    ]
    return Cluster(_name("up"), draw(network()), children)


@st.composite
def random_topology(draw):
    return ClusterTopology(draw(tree(depth=draw(st.integers(1, 3)))))


# ---------------------------------------------------------------------------
# Exhaustive identity on the fixed calibrated machines
# ---------------------------------------------------------------------------


class TestScalarPlanVsLegacy:
    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_default_gather_plan_is_the_legacy_prediction(
        self, params_by_name, name
    ):
        params = params_by_name[name]
        plan = default_plan("gather", params.k)
        for n in NS:
            for root in range(params.p):
                legacy = predict_gather(params, n, root=root)
                planned = predict_gather_plan(params, n, plan, root=root)
                assert planned.total == legacy.total
                assert [s.label for s in planned.steps] == [
                    s.label for s in legacy.steps
                ]
                for got, want in zip(planned.steps, legacy.steps):
                    assert (got.gh, got.L) == (want.gh, want.L)

    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_default_broadcast_plan_is_the_legacy_two_phase(
        self, params_by_name, name
    ):
        params = params_by_name[name]
        plan = default_plan("broadcast", params.k)
        for n in NS:
            for root in range(params.p):
                legacy = predict_broadcast(params, n, root=root, phases="two")
                planned = predict_broadcast_plan(params, n, plan, root=root)
                assert planned.total == legacy.total
                for got, want in zip(planned.steps, legacy.steps):
                    assert (got.gh, got.L) == (want.gh, want.L)

    def test_wrong_op_plan_rejected(self, params_by_name):
        params = params_by_name["testbed"]
        with pytest.raises(CollectiveError, match="expected 'gather'"):
            predict_gather_plan(
                params, 100, default_plan("broadcast", params.k)
            )
        with pytest.raises(CollectiveError, match="expected 'broadcast'"):
            predict_broadcast_plan(
                params, 100, default_plan("gather", params.k)
            )

    def test_wrong_k_plan_rejected(self, params_by_name):
        params = params_by_name["grid3"]
        with pytest.raises(CollectiveError, match="levels"):
            predict_gather_plan(params, 100, default_plan("gather", 1))


class TestKernelPlanGrids:
    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_gather_grid_bit_identical_to_scalar(self, params_by_name, name):
        params = params_by_name[name]
        plans = enumerate_plans("gather", params.k)
        points = [(n, plan) for n in NS for plan in plans]
        ns = np.array([n for n, _ in points], dtype=np.int64)
        grid = GatherKernel(params).evaluate_plans(
            ns, [plan for _, plan in points]
        )
        for i, (n, plan) in enumerate(points):
            assert_ledger_identical(
                predict_gather_plan(params, n, plan), grid.ledger(i)
            )
        assert grid.totals.shape == (len(points),)

    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_broadcast_grid_bit_identical_to_scalar(
        self, params_by_name, name
    ):
        params = params_by_name[name]
        plans = enumerate_plans("broadcast", params.k)
        points = [(n, plan) for n in NS for plan in plans]
        ns = np.array([n for n, _ in points], dtype=np.int64)
        grid = BroadcastKernel(params).evaluate_plans(
            ns, [plan for _, plan in points]
        )
        for i, (n, plan) in enumerate(points):
            assert_ledger_identical(
                predict_broadcast_plan(params, n, plan), grid.ledger(i)
            )

    def test_single_plan_broadcasts_over_the_grid(self, params_by_name):
        params = params_by_name["testbed"]
        plan = default_plan("gather", params.k)
        ns = np.array(NS, dtype=np.int64)
        grid = GatherKernel(params).evaluate_plans(ns, plan)
        for i, n in enumerate(NS):
            assert grid.totals[i] == predict_gather_plan(params, n, plan).total


class TestPlannerHelpers:
    def test_score_plans_matches_scalar_totals(self, params_by_name):
        params = params_by_name["grid3"]
        plans = enumerate_plans("broadcast", params.k)[:7]
        totals = score_plans(params, 25_600, plans)
        assert totals.shape == (len(plans),)
        for plan, total in zip(plans, totals):
            assert total == predict_broadcast_plan(params, 25_600, plan).total

    def test_rank_plans_sorted_and_truncated(self, params_by_name):
        params = params_by_name["grid3"]
        plans = enumerate_plans("gather", params.k)
        ranked = rank_plans(params, 25_600, plans, top=5)
        assert len(ranked) == 5
        totals = [total for _, total in ranked]
        assert totals == sorted(totals)
        full = rank_plans(params, 25_600, plans)
        assert len(full) == len(plans)
        assert full[0][1] == min(t for _, t in full)

    def test_empty_and_mixed_op_rejected(self, params_by_name):
        params = params_by_name["testbed"]
        with pytest.raises(ModelError, match="at least one plan"):
            score_plans(params, 100, [])
        mixed = [
            default_plan("gather", params.k),
            default_plan("broadcast", params.k),
        ]
        with pytest.raises(ModelError, match="op"):
            score_plans(params, 100, mixed)


# ---------------------------------------------------------------------------
# Property: identity holds on random k<=3 machines
# ---------------------------------------------------------------------------


class TestRandomMachines:
    @given(topology=random_topology(), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_plan_layers_agree_everywhere(self, topology, data):
        params = calibrate(topology)
        op = data.draw(st.sampled_from(["gather", "broadcast"]))
        plans = enumerate_plans(op, params.k, segments=(1, 3))
        plan = data.draw(st.sampled_from(plans))
        n = data.draw(st.sampled_from([0, 1, 997, 25_600]))
        root = data.draw(st.integers(0, params.p - 1))
        kernel = (GatherKernel if op == "gather" else BroadcastKernel)(params)
        scalar_fn = (
            predict_gather_plan if op == "gather" else predict_broadcast_plan
        )
        scalar = scalar_fn(params, n, plan, root=root)
        grid = kernel.evaluate_plans(
            np.array([n], dtype=np.int64), [plan], roots=root
        )
        assert_ledger_identical(scalar, grid.ledger(0))
        if plan.is_default:
            legacy_fn = predict_gather if op == "gather" else predict_broadcast
            kwargs = {} if op == "gather" else {"phases": "two"}
            assert scalar.total == legacy_fn(params, n, root=root, **kwargs).total
