"""Unit tests for the vectorized analytic cost kernels.

The contract under test is *bit-identity*: every ledger a kernel grid
reconstructs — names, labels, levels, and each float component — must
equal the scalar ``predict_*`` output exactly, not approximately.
"""

import itertools

import numpy as np
import pytest

from repro.cluster.presets import grid_three_level, smp_sgi_lan, ucf_testbed
from repro.errors import CollectiveError, ModelError
from repro.model.kernels import (
    BroadcastKernel,
    GatherKernel,
    balanced_counts,
    equal_counts,
)
from repro.model.params import calibrate
from repro.model.predict import default_counts, predict_broadcast, predict_gather

NS = [0, 1, 7, 1000, 128_000]


def assert_ledger_identical(expected, actual):
    """Exact equality on every ledger component (no tolerances)."""
    assert actual.name == expected.name
    assert len(actual.steps) == len(expected.steps)
    for got, want in zip(actual.steps, expected.steps):
        assert got.label == want.label
        assert got.level == want.level
        assert got.w == want.w
        assert got.gh == want.gh
        assert got.L == want.L
    assert actual.total == expected.total


@pytest.fixture(scope="module")
def params_by_name():
    return {
        "testbed": calibrate(ucf_testbed(10)),
        "fig1": calibrate(smp_sgi_lan()),
        "grid3": calibrate(grid_three_level(2, 2, 2)),
    }


class TestGatherKernel:
    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_bit_identical_over_ns_and_roots(self, params_by_name, name):
        params = params_by_name[name]
        points = [(n, root) for n in NS for root in range(params.p)]
        ns = np.array([n for n, _ in points], dtype=np.int64)
        roots = np.array([root for _, root in points], dtype=np.int64)
        grid = GatherKernel(params).evaluate(ns, roots=roots)
        for i, (n, root) in enumerate(points):
            assert_ledger_identical(
                predict_gather(params, n, root=root), grid.ledger(i)
            )
            assert grid.totals[i] == predict_gather(params, n, root=root).total

    def test_default_root_is_fastest(self, params_by_name):
        params = params_by_name["testbed"]
        grid = GatherKernel(params).evaluate(np.array([1000]))
        assert_ledger_identical(predict_gather(params, 1000), grid.ledger(0))

    def test_explicit_counts(self, params_by_name):
        params = params_by_name["fig1"]
        n = 4097
        counts = default_counts(params.with_equal_fractions(), n)
        grid = GatherKernel(params).evaluate(
            np.array([n]), counts=np.array([counts], dtype=np.int64)
        )
        assert_ledger_identical(
            predict_gather(params, n, counts=counts), grid.ledger(0)
        )

    def test_negative_n_rejected(self, params_by_name):
        with pytest.raises(CollectiveError, match="n must be >= 0"):
            GatherKernel(params_by_name["testbed"]).evaluate(np.array([5, -1]))

    def test_bad_root_rejected(self, params_by_name):
        with pytest.raises(CollectiveError, match="out of range"):
            GatherKernel(params_by_name["testbed"]).evaluate(
                np.array([5]), roots=np.array([99])
            )

    def test_count_sum_mismatch_rejected(self, params_by_name):
        params = params_by_name["testbed"]
        bad = np.zeros((1, params.p), dtype=np.int64)
        with pytest.raises(CollectiveError, match="sum"):
            GatherKernel(params).evaluate(np.array([10]), counts=bad)

    def test_empty_grid(self, params_by_name):
        grid = GatherKernel(params_by_name["testbed"]).evaluate(np.array([], dtype=np.int64))
        assert grid.size == 0
        assert grid.totals.shape == (0,)
        assert grid.ledgers() == []

    def test_ledger_index_out_of_range(self, params_by_name):
        grid = GatherKernel(params_by_name["testbed"]).evaluate(np.array([10]))
        with pytest.raises(ModelError, match="out of range"):
            grid.ledger(1)


class TestBroadcastKernel:
    @pytest.mark.parametrize("name", ["testbed", "fig1", "grid3"])
    def test_bit_identical_over_phase_combos(self, params_by_name, name):
        params = params_by_name[name]
        combos = list(itertools.product(("one", "two"), repeat=params.k))
        points = [
            (n, root, combo)
            for n in NS
            for root in range(params.p)
            for combo in combos
        ]
        specs = [
            {level: combo[level - 1] for level in range(1, params.k + 1)}
            for _, _, combo in points
        ]
        ns = np.array([n for n, _, _ in points], dtype=np.int64)
        roots = np.array([root for _, root, _ in points], dtype=np.int64)
        grid = BroadcastKernel(params).evaluate(ns, roots=roots, phases=specs)
        for i, (n, root, _combo) in enumerate(points):
            expected = predict_broadcast(params, n, root=root, phases=specs[i])
            assert_ledger_identical(expected, grid.ledger(i))
            assert grid.totals[i] == expected.total

    @pytest.mark.parametrize("phases", ["one", "two"])
    def test_string_phase_spec(self, params_by_name, phases):
        params = params_by_name["fig1"]
        grid = BroadcastKernel(params).evaluate(
            np.array([25_600]), phases=phases
        )
        assert_ledger_identical(
            predict_broadcast(params, 25_600, phases=phases), grid.ledger(0)
        )

    def test_weighted_fractions(self, params_by_name):
        params = params_by_name["testbed"]
        fractions = [params.c_of(0, j) for j in range(params.p)]
        grid = BroadcastKernel(params).evaluate(
            np.array([12_345]), phases="two", fractions=fractions
        )
        assert_ledger_identical(
            predict_broadcast(params, 12_345, phases="two", fractions=fractions),
            grid.ledger(0),
        )

    def test_n_zero_gives_empty_ledger(self, params_by_name):
        params = params_by_name["testbed"]
        grid = BroadcastKernel(params).evaluate(np.array([0, 100]))
        assert grid.ledger(0).steps == []
        assert grid.totals[0] == 0.0
        assert grid.ledger(1).steps != []

    def test_invalid_phase_rejected(self, params_by_name):
        with pytest.raises(CollectiveError, match="phase must be"):
            BroadcastKernel(params_by_name["testbed"]).evaluate(
                np.array([10]), phases="three"
            )

    def test_wrong_length_phase_sequence_rejected(self, params_by_name):
        with pytest.raises(CollectiveError, match="length"):
            BroadcastKernel(params_by_name["testbed"]).evaluate(
                np.array([10, 20]), phases=["one"]
            )

    def test_wrong_fraction_length_rejected(self, params_by_name):
        with pytest.raises(CollectiveError, match="fractions"):
            BroadcastKernel(params_by_name["testbed"]).evaluate(
                np.array([10]), fractions=[0.5, 0.5]
            )


class TestCountHelpers:
    def test_balanced_matches_default_counts(self, params_by_name):
        params = params_by_name["testbed"]
        ns = np.array([0, 17, 128_000])
        table = balanced_counts(params, ns)
        for row, n in zip(table, ns):
            assert list(row) == default_counts(params, int(n))

    def test_equal_counts_near_uniform(self, params_by_name):
        params = params_by_name["testbed"]
        table = equal_counts(params, np.array([1000]))
        assert table.sum() == 1000
        assert table.max() - table.min() <= 1

    def test_unique_n_computed_once(self, params_by_name):
        """Duplicated sizes share one scalar partition (shape contract)."""
        params = params_by_name["testbed"]
        table = balanced_counts(params, np.array([500, 500, 500]))
        assert (table[0] == table[1]).all() and (table[1] == table[2]).all()


class TestKernelGridApi:
    def test_repr_mentions_points(self, params_by_name):
        grid = GatherKernel(params_by_name["testbed"]).evaluate(np.array([10, 20]))
        assert "points=2" in repr(grid)

    def test_totals_match_ledger_totals(self, params_by_name):
        """grid.totals must be the fsum the reconstructed ledgers report,
        including on k=3 machines where more than two steps accumulate."""
        params = params_by_name["grid3"]
        ns = np.array([1, 999, 65_536], dtype=np.int64)
        for grid in (
            GatherKernel(params).evaluate(ns),
            BroadcastKernel(params).evaluate(ns),
        ):
            for i in range(grid.size):
                assert grid.totals[i] == grid.ledger(i).total
