"""Unit tests for repro.model.tree."""

import pytest

from repro.cluster import Cluster, ClusterTopology, MachineSpec
from repro.cluster.presets import CAMPUS_ATM, ETHERNET_100
from repro.errors import ModelError
from repro.model import HBSPTree


class TestFlatTree:
    def test_k_and_p(self, testbed):
        tree = HBSPTree(testbed)
        assert tree.k == 1
        assert tree.num_processors == 10

    def test_m_counts(self, testbed):
        tree = HBSPTree(testbed)
        assert tree.m(0) == 10
        assert tree.m(1) == 1

    def test_root_is_level_k(self, testbed):
        tree = HBSPTree(testbed)
        assert tree.root.level == 1
        assert tree.root.fan_out == 10

    def test_leaf_indexing_left_to_right(self, testbed):
        tree = HBSPTree(testbed)
        for j, node in enumerate(tree.level_nodes(0)):
            assert node.index == j
            assert node.machine == j

    def test_labels(self, testbed):
        tree = HBSPTree(testbed)
        assert tree.root.label == "M_{1,0}"
        assert tree.node(0, 3).label == "M_{0,3}"

    def test_root_coordinator_is_fastest_machine(self, testbed):
        tree = HBSPTree(testbed)
        assert tree.root.coordinator == testbed.fastest()


class TestFig1Tree:
    """The tree of Figure 2: an HBSP^2 machine with an irregular leaf."""

    def test_k_two(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        assert tree.k == 2

    def test_level_counts_match_figure(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        assert tree.m(2) == 1
        assert tree.m(1) == 3  # SMP, wrapped SGI, LAN
        assert tree.m(0) == 9

    def test_sgi_plays_two_roles(self, fig1_machine):
        """The lone SGI appears as an HBSP^1 node *and* a level-0 node."""
        tree = HBSPTree(fig1_machine)
        sgi_mid = tree.topology.machine_id("sgi-octane")
        level1_coords = [node.coordinator for node in tree.level_nodes(1)]
        assert sgi_mid in level1_coords
        assert tree.processor_node(sgi_mid).level == 0

    def test_coordinators_are_fastest_members(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        for node in tree.walk():
            members = node.members
            speeds = {
                mid: tree.topology.machines[mid].cpu_rate for mid in members
            }
            assert speeds[node.coordinator] == max(speeds.values())

    def test_parent_links(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        for node in tree.level_nodes(1):
            assert tree.parent(node) is tree.root
        assert tree.parent(tree.root) is None

    def test_members_partition_at_each_level(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        for level in range(1, tree.k + 1):
            all_members: list[int] = []
            for node in tree.level_nodes(level):
                all_members.extend(node.members)
            assert sorted(all_members) == list(range(tree.num_processors))

    def test_walk_visits_all_nodes_once(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        visited = list(tree.walk())
        assert len(visited) == sum(tree.m(level) for level in range(tree.k + 1))
        assert len(set(id(node) for node in visited)) == len(visited)


class TestMachineClasses:
    def test_containment_chain(self, grid):
        """HBSP^0 ⊂ HBSP^1 ⊂ ... ⊂ HBSP^k (Section 3.1)."""
        tree = HBSPTree(grid)
        for outer in range(tree.k + 1):
            for inner in range(outer + 1):
                assert tree.contains_class(outer, inner)
        assert not tree.contains_class(0, 1)

    def test_machine_class_is_level(self, grid):
        tree = HBSPTree(grid)
        for node in tree.walk():
            assert tree.machine_class(node) == node.level

    def test_negative_class_rejected(self, grid):
        with pytest.raises(ModelError):
            HBSPTree(grid).contains_class(-1, 0)


class TestErrors:
    def test_bad_level_rejected(self, testbed):
        tree = HBSPTree(testbed)
        with pytest.raises(ModelError):
            tree.level_nodes(5)
        with pytest.raises(ModelError):
            tree.level_nodes(-1)

    def test_bad_index_rejected(self, testbed):
        tree = HBSPTree(testbed)
        with pytest.raises(ModelError):
            tree.node(0, 99)

    def test_unknown_machine_rejected(self, testbed):
        tree = HBSPTree(testbed)
        with pytest.raises(ModelError):
            tree.processor_node(999)


class TestDescribe:
    def test_mentions_labels_and_coordinators(self, fig1_machine):
        tree = HBSPTree(fig1_machine)
        text = tree.describe()
        assert "M_{2,0}" in text
        assert "sgi-octane" in text
