"""Membership epochs: pure arithmetic, deterministic, exhaustive edges."""

import math

from repro.cluster import two_lans
from repro.dynamics import (
    DynamicPlan,
    MachineJoin,
    MachineLeave,
    SpeedDrift,
    epoch_at,
    membership_epochs,
)

TOPOLOGY = two_lans()
ALL = frozenset(m.name for m in TOPOLOGY.machines)


class TestMembershipEpochs:
    def test_empty_plan_single_epoch(self):
        epochs = membership_epochs(DynamicPlan.empty(), TOPOLOGY)
        assert len(epochs) == 1
        assert epochs[0].start == 0.0
        assert epochs[0].end == math.inf
        assert epochs[0].present == ALL

    def test_non_membership_events_do_not_split(self):
        plan = DynamicPlan(SpeedDrift("lan0-m0", duration=5.0))
        assert len(membership_epochs(plan, TOPOLOGY)) == 1

    def test_leave_and_rejoin(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=1.0, duration=2.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        assert [(e.start, e.end) for e in epochs] == [
            (0.0, 1.0), (1.0, 3.0), (3.0, math.inf)
        ]
        assert epochs[0].present == ALL
        assert epochs[1].present == ALL - {"lan0-m0"}
        assert epochs[2].present == ALL

    def test_leave_forever(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=2.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        assert len(epochs) == 2
        assert epochs[-1].present == ALL - {"lan0-m0"}
        assert epochs[-1].end == math.inf

    def test_join_absent_before_start(self):
        plan = DynamicPlan(MachineJoin("lan1-m0", start=4.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        assert len(epochs) == 2
        assert epochs[0].present == ALL - {"lan1-m0"}
        assert epochs[1].present == ALL
        assert epochs[1].start == 4.0

    def test_join_at_zero_is_noop(self):
        plan = DynamicPlan(MachineJoin("lan1-m0", start=0.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        assert len(epochs) == 1
        assert epochs[0].present == ALL

    def test_overlapping_absences_merge(self):
        plan = DynamicPlan([
            MachineLeave("lan0-m0", start=1.0, duration=2.0),
            MachineLeave("lan0-m0", start=2.0, duration=3.0),
        ])
        epochs = membership_epochs(plan, TOPOLOGY)
        assert [(e.start, e.end) for e in epochs] == [
            (0.0, 1.0), (1.0, 5.0), (5.0, math.inf)
        ]

    def test_epoch_indices_are_sequential(self):
        plan = DynamicPlan([
            MachineLeave("lan0-m0", start=1.0, duration=1.0),
            MachineLeave("lan0-m1", start=3.0, duration=1.0),
        ])
        epochs = membership_epochs(plan, TOPOLOGY)
        assert [e.index for e in epochs] == list(range(len(epochs)))

    def test_determinism(self):
        plan = DynamicPlan([
            MachineLeave("lan0-m0", start=1.0, duration=1.0),
            MachineJoin("lan1-m1", start=2.5),
        ])
        assert membership_epochs(plan, TOPOLOGY) == membership_epochs(
            plan, TOPOLOGY
        )


class TestEpochAt:
    def test_lookup(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=1.0, duration=2.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        assert epoch_at(epochs, 0.0) is epochs[0]
        assert epoch_at(epochs, 0.999) is epochs[0]
        assert epoch_at(epochs, 1.0) is epochs[1]
        assert epoch_at(epochs, 2.999) is epochs[1]
        assert epoch_at(epochs, 3.0) is epochs[2]
        assert epoch_at(epochs, 1e9) is epochs[2]

    def test_covers(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=1.0, duration=2.0))
        epochs = membership_epochs(plan, TOPOLOGY)
        for e in epochs:
            assert e.covers(e.start)
            if math.isfinite(e.end):
                assert not e.covers(e.end)
