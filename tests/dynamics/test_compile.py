"""Compiling dynamic plans onto the fault injector."""

import pytest

from repro.cluster import two_lans
from repro.errors import DynamicsError
from repro.dynamics import (
    DiurnalLoad,
    DynamicPlan,
    MachineJoin,
    MachineLeave,
    SpeedDrift,
    compile_plan,
)
from repro.faults import BackgroundLoad, FaultPlan, MachinePause, MachineSlowdown

TOPOLOGY = two_lans()


class TestCompilePlan:
    def test_empty_plan_is_static(self):
        compiled = compile_plan(DynamicPlan.empty(), TOPOLOGY, horizon=10.0)
        assert compiled.is_static
        assert compiled.fault_plan == FaultPlan.empty()
        assert len(compiled.epochs) == 1

    def test_horizon_must_be_finite_positive(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(DynamicsError):
                compile_plan(DynamicPlan.empty(), TOPOLOGY, horizon=bad)

    def test_join_becomes_leading_pause(self):
        plan = DynamicPlan(MachineJoin("lan0-m0", start=3.0))
        compiled = compile_plan(plan, TOPOLOGY, horizon=10.0)
        (pause,) = compiled.fault_plan
        assert isinstance(pause, MachinePause)
        assert pause.machine == "lan0-m0"
        assert pause.start == 0.0
        assert pause.end == 3.0

    def test_join_at_zero_emits_nothing(self):
        plan = DynamicPlan(MachineJoin("lan0-m0", start=0.0))
        compiled = compile_plan(plan, TOPOLOGY, horizon=10.0)
        assert compiled.fault_plan.is_empty

    def test_leave_clipped_to_horizon(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=2.0))  # forever
        compiled = compile_plan(plan, TOPOLOGY, horizon=10.0)
        (pause,) = compiled.fault_plan
        assert pause.start == 2.0
        assert pause.end == 10.0

    def test_leave_past_horizon_skipped(self):
        plan = DynamicPlan(MachineLeave("lan0-m0", start=20.0, duration=1.0))
        compiled = compile_plan(plan, TOPOLOGY, horizon=10.0)
        assert compiled.fault_plan.is_empty
        assert len(compiled.epochs) == 3  # the epoch split still exists

    def test_drift_deterministic_and_bounded(self):
        plan = DynamicPlan(
            SpeedDrift("lan0-m0", magnitude=0.5, step=1.0, ceiling=3.0)
        )
        a = compile_plan(plan, TOPOLOGY, seed=5, horizon=10.0)
        b = compile_plan(plan, TOPOLOGY, seed=5, horizon=10.0)
        assert a.fault_plan == b.fault_plan
        assert not a.is_static
        for spec in a.fault_plan:
            assert isinstance(spec, MachineSlowdown)
            assert 1.0 < spec.factor <= 3.0
            assert 0.0 <= spec.start < 10.0

    def test_drift_seed_matters(self):
        plan = DynamicPlan(SpeedDrift("lan0-m0", magnitude=0.5, step=1.0))
        a = compile_plan(plan, TOPOLOGY, seed=1, horizon=10.0)
        b = compile_plan(plan, TOPOLOGY, seed=2, horizon=10.0)
        assert a.fault_plan != b.fault_plan

    def test_piecewise_linear_drift(self):
        plan = DynamicPlan(
            SpeedDrift(
                "lan0-m0", process="piecewise_linear",
                step=2.0, floor=1.0, ceiling=4.0,
            )
        )
        compiled = compile_plan(plan, TOPOLOGY, horizon=8.0)
        for spec in compiled.fault_plan:
            assert 1.0 < spec.factor <= 4.0

    def test_diurnal_segments_follow_curve(self):
        plan = DynamicPlan(
            DiurnalLoad(
                "lan0-m0", intensity=0.4, period=8.0, amplitude=0.5,
            )
        )
        compiled = compile_plan(plan, TOPOLOGY, horizon=8.0)
        specs = list(compiled.fault_plan)
        assert len(specs) == 8  # one period, eight segments
        for spec in specs:
            assert isinstance(spec, BackgroundLoad)
            assert 0.0 < spec.intensity < 1.0
        # The curve peaks a quarter-period in and troughs at three quarters.
        assert specs[1].intensity == max(s.intensity for s in specs)
        assert specs[5].intensity == min(s.intensity for s in specs)

    def test_window_explosion_fails_loudly(self):
        plan = DynamicPlan(SpeedDrift("lan0-m0", step=1e-4))
        with pytest.raises(DynamicsError):
            compile_plan(plan, TOPOLOGY, horizon=10.0)

    def test_compiled_faults_validate_against_topology(self):
        plan = DynamicPlan([
            MachineLeave("lan0-m0", start=1.0, duration=2.0),
            SpeedDrift("lan1-m1", step=2.0),
            DiurnalLoad("lan0-m2", period=5.0),
        ])
        compiled = compile_plan(plan, TOPOLOGY, horizon=10.0)
        compiled.fault_plan.validate(TOPOLOGY)  # must not raise

    def test_unknown_machine_rejected(self):
        plan = DynamicPlan(MachineLeave("nope", start=1.0, duration=1.0))
        with pytest.raises(DynamicsError):
            compile_plan(plan, TOPOLOGY, horizon=10.0)


class TestCompiledRuns:
    def test_leave_slows_collective(self):
        from repro.collectives import run_gather

        n = 20_000
        base = run_gather(TOPOLOGY, n, seed=1).time
        plan = DynamicPlan(MachineLeave("lan0-m0", start=0.0, duration=base))
        compiled = compile_plan(plan, TOPOLOGY, horizon=max(base * 4, 1.0))
        paused = run_gather(
            TOPOLOGY, n, seed=1, faults=compiled.fault_plan
        ).time
        assert paused > base

    def test_empty_compile_is_bit_identical(self):
        from repro.collectives import run_gather

        n = 20_000
        base = run_gather(TOPOLOGY, n, seed=1).time
        compiled = compile_plan(DynamicPlan.empty(), TOPOLOGY, horizon=10.0)
        again = run_gather(
            TOPOLOGY, n, seed=1, faults=compiled.fault_plan
        ).time
        assert again == base
