"""Churn at 10^3 leaves (CI bench job: ``pytest -m scale``).

A 1000-machine cluster under machine churn: the epoch engine, slice
variant expansion, and re-dispatch machinery must stay deterministic
and interactive when the membership timeline covers hundreds of
machines.  Requests stay on the ``fanout`` macro fast path, matching
``tests/serve/test_scale.py``.
"""

import time

import pytest

from repro.dynamics import churn_plan, membership_epochs
from repro.serve import (
    ArrivalSpec,
    PolicySpec,
    RequestKind,
    ServiceConfig,
    run_service,
)
from repro.serve.service import resolve_cluster

pytestmark = pytest.mark.scale


def _big_config(seed: int = 0) -> ServiceConfig:
    return ServiceConfig(
        cluster="multi_rack:racks=25,hosts_per_rack=40",  # 1000 leaves
        arrival=ArrivalSpec(process="poisson", rate=3.0),
        workload=(
            RequestKind.from_dict(
                {"template": "fanout", "n": 100_000, "weight": 2}
            ),
            RequestKind.from_dict(
                {"template": "fanout", "name": "smallfan", "n": 20_000}
            ),
        ),
        policy=PolicySpec(queue_limit=64, max_batch=2),
        duration=10.0,
        seed=seed,
    )


def _churned(config: ServiceConfig, rate: float, seed: int = 0):
    topology = resolve_cluster(config.cluster)
    return churn_plan(
        [m.name for m in topology.machines],
        rate=rate,
        duration=config.duration,
        seed=seed,
    )


class TestThousandLeafChurn:
    def test_churned_session_degrades_gracefully(self):
        config = _big_config()
        plan = _churned(config, rate=2.0)
        epochs = membership_epochs(plan, resolve_cluster(config.cluster))
        assert len(epochs) > 1

        started = time.perf_counter()
        report = run_service(config, dynamics=plan)
        elapsed = time.perf_counter() - started

        # Conservation: every offered request is accounted for exactly
        # once, churn or not.
        assert report.completed + report.shed + report.degraded_shed == (
            report.offered
        )
        assert report.offered > 0
        assert report.epochs == len(epochs)
        # The session survives churn with most work still landing.
        assert report.completed > 0
        assert elapsed < 180.0

    def test_churned_session_is_bit_identical(self):
        config = _big_config(seed=5)
        plan = _churned(config, rate=2.0, seed=5)
        first = run_service(config, dynamics=plan)
        second = run_service(config, dynamics=plan)
        assert first == second
        assert first.latencies == second.latencies
        assert first.slice_completed == second.slice_completed

    def test_zero_churn_matches_static_at_scale(self):
        config = _big_config(seed=2)
        plan = _churned(config, rate=0.0)
        assert run_service(config, dynamics=plan) == run_service(config)
