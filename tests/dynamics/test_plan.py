"""Unit tests for declarative dynamic plans and their serialisation."""

import math

import pytest

from repro.cluster import two_lans
from repro.errors import DynamicsError
from repro.dynamics import (
    DiurnalLoad,
    DynamicPlan,
    MachineJoin,
    MachineLeave,
    SpeedDrift,
    churn_plan,
    drift_plan,
)

ALL_KINDS = [
    MachineJoin("lan0-m0", start=2.0),
    MachineLeave("lan0-m1", start=1.0, duration=0.5),
    MachineLeave("lan1-m0", start=3.0),  # never returns
    SpeedDrift("lan0-m2", process="random_walk", magnitude=0.3, step=0.5),
    SpeedDrift("lan1-m1", process="piecewise_linear", ceiling=3.0),
    DiurnalLoad("lan0-m3", intensity=0.4, period=10.0, amplitude=0.8),
]


class TestSpecs:
    def test_join_validation(self):
        with pytest.raises(DynamicsError):
            MachineJoin("m", start=-1.0)
        assert MachineJoin("m", start=0.0).start == 0.0

    def test_leave_end(self):
        assert MachineLeave("m", start=1.0, duration=2.0).end == 3.0
        assert MachineLeave("m", start=1.0).end == math.inf
        with pytest.raises(DynamicsError):
            MachineLeave("m", start=0.0, duration=0.0)

    def test_drift_validation(self):
        with pytest.raises(DynamicsError):
            SpeedDrift("m", process="brownian")
        with pytest.raises(DynamicsError):
            SpeedDrift("m", magnitude=0.0)
        with pytest.raises(DynamicsError):
            SpeedDrift("m", step=0.0)
        with pytest.raises(DynamicsError):
            SpeedDrift("m", floor=0.5)
        with pytest.raises(DynamicsError):
            SpeedDrift("m", floor=2.0, ceiling=1.5)

    def test_diurnal_validation(self):
        with pytest.raises(DynamicsError):
            DiurnalLoad("m", intensity=0.0)
        with pytest.raises(DynamicsError):
            DiurnalLoad("m", intensity=1.0)
        with pytest.raises(DynamicsError):
            DiurnalLoad("m", amplitude=1.5)
        with pytest.raises(DynamicsError):
            DiurnalLoad("m", period=0.0)
        with pytest.raises(DynamicsError):
            DiurnalLoad("m", burst_mean=0.0)


class TestPlan:
    def test_empty_plan(self):
        plan = DynamicPlan.empty()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.machines() == ()
        assert "empty" in repr(plan)

    def test_wraps_bare_spec(self):
        plan = DynamicPlan(MachineLeave("m", start=1.0, duration=1.0))
        assert len(plan) == 1

    def test_rejects_non_specs(self):
        with pytest.raises(DynamicsError):
            DynamicPlan(["not a spec"])

    def test_extended_and_machines(self):
        plan = DynamicPlan(ALL_KINDS[:2]).extended(*ALL_KINDS[2:])
        assert len(plan) == len(ALL_KINDS)
        assert plan.machines() == tuple(
            sorted({e.machine for e in ALL_KINDS})
        )

    def test_validate_names(self):
        topology = two_lans()
        DynamicPlan(ALL_KINDS).validate(topology)
        with pytest.raises(DynamicsError):
            DynamicPlan(MachineJoin("no-such", start=1.0)).validate(topology)


class TestSerialisation:
    def test_round_trip_all_kinds(self):
        plan = DynamicPlan(ALL_KINDS)
        restored = DynamicPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.to_json() == plan.to_json()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(DynamicsError):
            DynamicPlan.from_dict({"events": [{"kind": "meteor_strike"}]})
        with pytest.raises(DynamicsError):
            DynamicPlan.from_dict({"faults": []})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(DynamicsError):
            DynamicPlan.from_json("{not json")

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(DynamicPlan(ALL_KINDS).to_json())
        assert DynamicPlan.from_file(str(path)) == DynamicPlan(ALL_KINDS)
        with pytest.raises(DynamicsError):
            DynamicPlan.from_file(str(tmp_path / "missing.json"))


class TestPresets:
    def test_churn_plan_deterministic(self):
        names = [m.name for m in two_lans().machines]
        a = churn_plan(names, rate=0.5, duration=20.0, seed=7)
        b = churn_plan(names, rate=0.5, duration=20.0, seed=7)
        assert a == b
        assert not a.is_empty
        assert all(isinstance(e, MachineLeave) for e in a)
        assert all(0.0 <= e.start < 20.0 for e in a)

    def test_churn_plan_seed_matters(self):
        names = [m.name for m in two_lans().machines]
        a = churn_plan(names, rate=1.0, duration=20.0, seed=1)
        b = churn_plan(names, rate=1.0, duration=20.0, seed=2)
        assert a != b

    def test_churn_rate_zero_is_empty(self):
        assert churn_plan(["m"], rate=0.0, duration=10.0).is_empty

    def test_churn_validation(self):
        with pytest.raises(DynamicsError):
            churn_plan([], rate=1.0, duration=10.0)
        with pytest.raises(DynamicsError):
            churn_plan(["m"], rate=-1.0, duration=10.0)
        with pytest.raises(DynamicsError):
            churn_plan(["m"], rate=1.0, duration=0.0)
        with pytest.raises(DynamicsError):
            churn_plan(["m"], rate=1.0, duration=10.0, outage_mean=0.0)

    def test_drift_plan_covers_all_machines(self):
        plan = drift_plan(["a", "b"], magnitude=0.1, step=2.0, ceiling=3.0)
        assert plan.machines() == ("a", "b")
        assert all(isinstance(e, SpeedDrift) for e in plan)
