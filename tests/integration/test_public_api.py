"""API-stability tests: the documented public surface exists and is
documented.

These catch accidental removals/renames of public names and enforce
the docstring convention (every public item carries documentation).
"""

import inspect

import pytest

import repro
import repro.apps
import repro.bytemark
import repro.cluster
import repro.collectives
import repro.experiments
import repro.faults
import repro.hbsplib
import repro.model
import repro.pvm
import repro.sim
import repro.util

PACKAGES = [
    repro,
    repro.apps,
    repro.bytemark,
    repro.cluster,
    repro.collectives,
    repro.experiments,
    repro.faults,
    repro.hbsplib,
    repro.model,
    repro.pvm,
    repro.sim,
    repro.util,
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_all_names_resolve(self, package):
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package.__name__}.{name} missing"

    def test_top_level_quickstart_names(self):
        for name in (
            "ucf_testbed",
            "smp_sgi_lan",
            "run_gather",
            "run_broadcast",
            "RootPolicy",
            "WorkloadPolicy",
            "HbspRuntime",
            "calibrate",
            "HBSPTree",
            "FaultPlan",
            "Injector",
            "DeliveryPolicy",
            "FaultError",
            "TimeoutError",
            "Trace",
            "TraceRecord",
        ):
            assert name in repro.__all__

    def test_version(self):
        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_package_documented(self, package):
        assert package.__doc__ and package.__doc__.strip()

    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_public_callables_documented(self, package):
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{package.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        """Spot-check the workhorse classes: all public methods carry
        docstrings."""
        from repro.hbsplib import HbspContext, HbspRuntime
        from repro.model import HBSPParams, HBSPTree
        from repro.sim import Engine

        undocumented = []
        for cls in (HbspContext, HbspRuntime, HBSPParams, HBSPTree, Engine):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"undocumented methods: {undocumented}"
