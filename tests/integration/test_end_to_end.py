"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterTopology,
    HbspRuntime,
    MachineSpec,
    NetworkSpec,
    RootPolicy,
    WorkloadPolicy,
    calibrate,
    run_broadcast,
    run_gather,
)
from repro.bytemark import simulate_scores
from repro.cluster.presets import ETHERNET_100


class TestCustomTopologyPipeline:
    """Build a custom machine -> calibrate -> run -> predict, end to end."""

    def make_machine(self):
        lan_a = Cluster(
            "lab-a",
            ETHERNET_100,
            [
                MachineSpec("alpha", cpu_rate=9e7, nic_gap=8e-8),
                MachineSpec("beta", cpu_rate=4e7, nic_gap=9e-8),
            ],
        )
        lan_b = Cluster(
            "lab-b",
            ETHERNET_100,
            [
                MachineSpec("gamma", cpu_rate=6e7, nic_gap=8.5e-8),
                MachineSpec("delta", cpu_rate=3e7, nic_gap=1e-7),
            ],
        )
        backbone = NetworkSpec("backbone", gap=2e-7, latency=1e-3, sync_base=5e-3)
        return ClusterTopology(Cluster("campus", backbone, [lan_a, lan_b]))

    def test_full_pipeline(self):
        topology = self.make_machine()
        params = calibrate(topology)
        assert params.k == 2
        assert params.p == 4

        outcome = run_gather(topology, 10_000)
        root = outcome.runtime.fastest_pid
        assert outcome.runtime.topology.machines[root].name == "alpha"
        assert outcome.values[root][0] == 10_000
        assert outcome.predicted_time > 0

    def test_noisy_scores_flow_through(self):
        topology = self.make_machine()
        scores = simulate_scores(topology, noise_sigma=0.2, seed=11)
        outcome = run_gather(topology, 10_000, scores=scores)
        assert sum(v[0] for v in outcome.values.values()) == 10_000


class TestUserProgram:
    """A hand-written superstep program using the full HBSPlib API."""

    def test_histogram_program(self, testbed_small):
        """Distributed histogram: scatter-less local data, local count,
        reduce at the fastest machine."""
        BINS = 8

        def histogram(ctx, n_local):
            rng = np.random.default_rng(ctx.pid)
            data = rng.integers(0, BINS, size=n_local)
            yield from ctx.compute(n_local)
            local_counts = np.bincount(data, minlength=BINS)
            root = ctx.fastest_pid
            if ctx.pid != root:
                yield from ctx.send(root, local_counts)
            yield from ctx.sync()
            if ctx.pid == root:
                total = local_counts.astype(np.int64)
                for message in ctx.messages():
                    total += message.payload
                return int(total.sum())
            return None

        runtime = HbspRuntime(testbed_small)
        result = runtime.run(histogram, 1000)
        assert result.values[runtime.fastest_pid] == 4000

    def test_multi_superstep_pipeline(self, fig1_machine):
        """Three supersteps with cluster-local then global traffic."""

        def program(ctx):
            coord = ctx.coordinator_pid(1)
            # Step 1: everyone reports to its cluster coordinator.
            if ctx.pid != coord:
                yield from ctx.send(coord, 1)
            yield from ctx.sync(level=1)
            local = 1 + sum(m.payload for m in ctx.messages())
            # Step 2: coordinators report to the global root.
            root = ctx.coordinator_pid(2)
            if ctx.pid == coord and ctx.pid != root:
                yield from ctx.send(root, local)
            yield from ctx.sync()
            total = None
            if ctx.pid == root:
                total = local + sum(m.payload for m in ctx.messages())
                # Step 3: root announces the total.
                for pid in range(ctx.nprocs):
                    if pid != ctx.pid:
                        yield from ctx.send(pid, total)
            yield from ctx.sync()
            if ctx.pid != root:
                total = ctx.messages()[0].payload
            return total

        runtime = HbspRuntime(fig1_machine)
        result = runtime.run(program)
        assert set(result.values.values()) == {9}


class TestCrossChecks:
    def test_collective_times_ranked_sanely(self, testbed_small):
        """broadcast moves ~p*n bytes, gather ~n: broadcast slower."""
        n = 50_000
        gather = run_gather(testbed_small, n)
        broadcast = run_broadcast(testbed_small, n, phases="one")
        assert broadcast.time > gather.time

    def test_homogeneous_cluster_no_root_effect(self, homogeneous):
        """On a homogeneous (pure BSP) machine, root choice is a wash."""
        n = 25_600
        t_a = run_gather(homogeneous, n, root=0, workload=WorkloadPolicy.EQUAL)
        t_b = run_gather(
            homogeneous, n, root=homogeneous.num_machines - 1,
            workload=WorkloadPolicy.EQUAL,
        )
        assert t_a.time == pytest.approx(t_b.time, rel=0.02)

    def test_equal_and_balanced_agree_on_homogeneous(self, homogeneous):
        runtime = HbspRuntime(homogeneous)
        assert runtime.partition(1000, balanced=True) == runtime.partition(
            1000, balanced=False
        )

    def test_more_machines_slower_broadcast(self):
        from repro.cluster import ucf_testbed

        n = 25_600
        small = run_broadcast(ucf_testbed(3), n, phases="one")
        large = run_broadcast(ucf_testbed(9), n, phases="one")
        assert large.time > small.time
