"""Generality tests: the stack works for arbitrary k (the paper stops
specifying algorithms at k = 2 and says "one can generalize the
approach given here" — we verify the generalisation up to k = 5)."""

import pytest

from repro.cluster import deep_hierarchy
from repro.collectives import run_broadcast, run_gather, run_reduce, run_scatter
from repro.model import HBSPTree, calibrate

N = 8_000


@pytest.fixture(scope="module", params=[3, 4, 5])
def deep(request):
    return deep_hierarchy(request.param, 2)


class TestStructure:
    def test_k_and_p(self, deep):
        tree = HBSPTree(deep)
        assert tree.k == deep.height
        assert tree.num_processors == 2**deep.height

    def test_networks_slow_down_going_up(self, deep):
        """Each level's wire is slower than the one below."""
        leaf0 = 0
        previous_gap = 0.0
        for level in range(1, deep.height + 1):
            # Find a peer whose LCA with leaf0 is at `level`.
            peer = next(
                b
                for b in range(deep.num_machines)
                if b != leaf0 and deep.route(leaf0, b)[1] == level
            )
            gap = deep.route(leaf0, peer)[0].gap
            assert gap > previous_gap
            previous_gap = gap

    def test_calibrates(self, deep):
        params = calibrate(deep)
        assert params.k == deep.height
        assert params.m[0] == deep.num_machines


class TestCollectivesAtDepth:
    def test_gather(self, deep):
        outcome = run_gather(deep, N)
        holder = max(outcome.values, key=lambda pid: outcome.values[pid][0])
        assert outcome.values[holder][0] == N
        assert outcome.supersteps == deep.height

    def test_broadcast(self, deep):
        outcome = run_broadcast(deep, N)
        assert {v[0] for v in outcome.values.values()} == {N}
        assert outcome.supersteps == 2 * deep.height  # two-phase per level

    def test_scatter(self, deep):
        outcome = run_scatter(deep, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_reduce(self, deep):
        outcome = run_reduce(deep, 500)
        holders = [v for v in outcome.values.values() if v[0] > 0]
        assert len(holders) == 1

    def test_prediction_tracks_depth(self, deep):
        """Each extra level adds at least its L to the predicted cost."""
        outcome = run_gather(deep, N)
        assert outcome.predicted.num_supersteps() == deep.height
        assert outcome.predicted_time <= outcome.time
