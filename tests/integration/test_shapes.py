"""Integration tests: the paper's qualitative result shapes.

These assert the *findings* of Section 5 on the simulated testbed —
who wins, roughly by how much, and where the anomalies sit.  They are
the acceptance tests of the reproduction (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import (
    fig3a_gather_root,
    fig3b_gather_balance,
    fig4a_broadcast_root,
    fig4b_broadcast_balance,
    sec4_broadcast_phases,
    sec4_gather_hierarchy,
)

SIZES = (100, 500, 1000)
PS = (2, 3, 4, 6, 8, 10)


@pytest.fixture(scope="module")
def fig3a():
    return fig3a_gather_root(SIZES, PS)


@pytest.fixture(scope="module")
def fig3b():
    return fig3b_gather_balance(SIZES, PS)


@pytest.fixture(scope="module")
def fig4a():
    return fig4a_broadcast_root(SIZES, PS)


@pytest.fixture(scope="module")
def fig4b():
    return fig4b_broadcast_balance(SIZES, PS)


class TestFig3aShape:
    """Fig. 3(a): gather T_s/T_f."""

    def test_p2_inversion(self, fig3a):
        """'it is better for the root node to be the slowest workstation'
        at p = 2 (Section 5.2)."""
        for series in fig3a.series.values():
            assert series[2] < 1.0

    def test_improvement_beyond_p2(self, fig3a):
        """'It is clear that the root node should be P_f as the number
        of processors increase.'"""
        for series in fig3a.series.values():
            for p in PS[1:]:
                assert series[p] > 1.05

    def test_grows_with_p(self, fig3a):
        """'As the number of processors increase, so does performance.'"""
        for series in fig3a.series.values():
            assert series[10] > series[3]
            assert series[8] >= series[4] * 0.98  # monotone-ish

    def test_steady_across_problem_sizes(self, fig3a):
        """'The improvement factor is steady across all problem sizes.'"""
        for p in PS[1:]:
            values = [fig3a.series[label][p] for label in fig3a.series]
            assert max(values) / min(values) < 1.2


class TestFig3bShape:
    """Fig. 3(b): gather T_u/T_b."""

    def test_benefit_at_p2(self, fig3b):
        """Balanced workloads help 'except at p = 2' — where they help
        a lot (the fast root keeps most items local)."""
        for series in fig3b.series.values():
            assert series[2] > 1.5

    def test_little_benefit_at_scale(self, fig3b):
        """'virtually no benefit to distributing the workload based on
        a processor's computational abilities' at larger p."""
        for series in fig3b.series.values():
            assert series[10] < 1.35

    def test_benefit_decays_with_p(self, fig3b):
        for series in fig3b.series.values():
            assert series[2] > series[6] > series[10] * 0.9


class TestFig4Shape:
    """Fig. 4: broadcast cannot exploit heterogeneity."""

    def test_root_choice_negligible(self, fig4a):
        """Fig. 4(a): 'neglible improvement in performance'."""
        for series in fig4a.series.values():
            for factor in series.values():
                assert 0.9 < factor < 1.35

    def test_residual_benefit_is_positive_beyond_p2(self, fig4a):
        """The small improvement that exists comes from P_f
        distributing the first-phase shares."""
        for series in fig4a.series.values():
            for p in PS[1:]:
                assert series[p] > 1.0

    def test_balancing_useless(self, fig4b):
        """Fig. 4(b): 'no benefit to balanced workloads since each
        processor must receive all of the items'."""
        for series in fig4b.series.values():
            for factor in series.values():
                assert 0.75 < factor < 1.25

    def test_broadcast_improvement_smaller_than_gather(self, fig3a, fig4a):
        for label in fig3a.series:
            assert fig3a.series[label][10] > fig4a.series[label][10]


class TestSec4Shapes:
    def test_two_phase_crossover_moves_with_rs(self):
        report = sec4_broadcast_phases(processor_counts=(2, 4, 8), size_kb=250)
        mild = report.series["sim r_s=1.25"]
        harsh = report.series["sim r_s=12"]
        # Mild heterogeneity: two-phase wins from small p.
        assert mild[4] > 1.2
        # Harsh heterogeneity: crossover arrives later.
        assert harsh[4] < mild[4]
        assert harsh[8] > 1.0  # but two-phase still wins eventually

    def test_hierarchy_penalty_amortises(self):
        report = sec4_gather_hierarchy(sizes_kb=(10, 100, 1000))
        series = report.series["hier/flat"]
        assert series[10] > series[100] > series[1000]
        assert series[1000] < 2.5

    def test_oversized_share_pathology(self):
        report = sec4_gather_hierarchy(sizes_kb=(500,))
        assert report.series["oversized/balanced"][500] > 1.4
