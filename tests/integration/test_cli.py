"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.cli import PRESETS, build_preset, main
from repro.errors import ReproError


class TestBuildPreset:
    def test_all_presets_build(self):
        for name in PRESETS:
            topology = build_preset(name)
            assert topology.num_machines >= 1

    def test_size_suffix(self):
        assert build_preset("testbed:6").num_machines == 6
        assert build_preset("flat:3").num_machines == 3
        assert build_preset("deep:3").height == 3

    def test_unknown_preset(self):
        with pytest.raises(ReproError, match="unknown preset"):
            build_preset("cloud")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "testbed" in out
        assert "gather" in out
        assert "fig3a" in out

    def test_describe(self, capsys):
        assert main(["describe", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "sgi-octane" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "testbed:4"]) == 0
        out = capsys.readouterr().out
        assert "M_{1,0}" in out

    def test_probe(self, capsys):
        assert main(["probe", "testbed:3"]) == 0
        out = capsys.readouterr().out
        assert "probed" in out

    @pytest.mark.parametrize(
        "collective",
        ["gather", "broadcast", "scatter", "reduce", "allgather",
         "alltoall", "allreduce", "scan"],
    )
    def test_run_collectives(self, capsys, collective):
        assert main(["run", collective, "testbed:4", "--n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "simulated:" in out
        assert "cost ledger" in out

    def test_run_with_options(self, capsys):
        assert main([
            "run", "gather", "testbed:4", "--n", "5000",
            "--root", "slowest", "--workload", "equal", "--gantt",
        ]) == 0
        out = capsys.readouterr().out
        assert "gantt" in out

    def test_run_explicit_root_pid(self, capsys):
        assert main(["run", "gather", "testbed:4", "--root", "2"]) == 0
        assert "root=pid2" in capsys.readouterr().out

    def test_run_unknown_collective(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "sort", "testbed:4"])

    def test_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "[table1]" in capsys.readouterr().out

    def test_experiment_plot(self, capsys):
        assert main(["experiment", "table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
