"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.cli import PRESETS, build_preset, main
from repro.errors import ReproError


class TestBuildPreset:
    def test_all_presets_build(self):
        for name in PRESETS:
            topology = build_preset(name)
            assert topology.num_machines >= 1

    def test_size_suffix(self):
        assert build_preset("testbed:6").num_machines == 6
        assert build_preset("flat:3").num_machines == 3
        assert build_preset("deep:3").height == 3

    def test_unknown_preset(self):
        with pytest.raises(ReproError, match="unknown preset"):
            build_preset("cloud")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "testbed" in out
        assert "gather" in out
        assert "fig3a" in out

    def test_describe(self, capsys):
        assert main(["describe", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "sgi-octane" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "testbed:4"]) == 0
        out = capsys.readouterr().out
        assert "M_{1,0}" in out

    def test_probe(self, capsys):
        assert main(["probe", "testbed:3"]) == 0
        out = capsys.readouterr().out
        assert "probed" in out

    @pytest.mark.parametrize(
        "collective",
        ["gather", "broadcast", "scatter", "reduce", "allgather",
         "alltoall", "allreduce", "scan"],
    )
    def test_run_collectives(self, capsys, collective):
        assert main(["run", collective, "testbed:4", "--n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "simulated:" in out
        assert "cost ledger" in out

    def test_run_with_options(self, capsys):
        assert main([
            "run", "gather", "testbed:4", "--n", "5000",
            "--root", "slowest", "--workload", "equal", "--gantt",
        ]) == 0
        out = capsys.readouterr().out
        assert "gantt" in out

    def test_run_explicit_root_pid(self, capsys):
        assert main(["run", "gather", "testbed:4", "--root", "2"]) == 0
        assert "root=pid2" in capsys.readouterr().out

    def test_run_unknown_collective(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "sort", "testbed:4"])

    def test_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "[table1]" in capsys.readouterr().out

    def test_experiment_plot(self, capsys):
        assert main(["experiment", "table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestTopologyCommands:
    def test_generate_prints_summary(self, capsys):
        assert main(["topology", "generate",
                     "multi_rack:racks=2,hosts_per_rack=3"]) == 0
        out = capsys.readouterr().out
        assert "p = 6 machines" in out
        assert "k = 2 levels" in out

    def test_generate_accepts_presets_too(self, capsys):
        assert main(["topology", "generate", "testbed:4"]) == 0
        assert "p = 4 machines" in capsys.readouterr().out

    def test_generate_writes_topology_and_matrix(self, tmp_path, capsys):
        topo_file = tmp_path / "topo.json"
        matrix_file = tmp_path / "probe.npz"
        assert main([
            "topology", "generate", "fat_tree:pods=2,racks_per_pod=2,hosts_per_rack=2",
            "--out", str(topo_file), "--params",
            "--matrix-out", str(matrix_file), "--noise", "0.05",
        ]) == 0
        assert topo_file.exists() and matrix_file.exists()
        out = capsys.readouterr().out
        assert "wrote topology JSON" in out
        assert "wrote probe matrix" in out

    def test_discover_from_matrix_file(self, tmp_path, capsys):
        matrix_file = tmp_path / "probe.json"
        assert main([
            "topology", "generate", "multi_rack:racks=3,hosts_per_rack=4",
            "--matrix-out", str(matrix_file),
        ]) == 0
        capsys.readouterr()
        assert main(["topology", "discover", "--matrix", str(matrix_file)]) == 0
        out = capsys.readouterr().out
        assert "discovered HBSP^2" in out
        assert "clusters per level" in out

    def test_discover_from_spec_scores_against_truth(self, tmp_path, capsys):
        out_file = tmp_path / "recovered.json"
        assert main([
            "topology", "discover", "--spec",
            "cloud_spot_mix:regions=2,zones_per_region=2,instances_per_zone=3",
            "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "exact True" in out
        assert out_file.exists()

    def test_discover_needs_exactly_one_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["topology", "discover"])
        assert "exactly one" in capsys.readouterr().err

    def test_inspect_topology_and_matrix(self, tmp_path, capsys):
        topo_file = tmp_path / "topo.json"
        matrix_file = tmp_path / "probe.npz"
        assert main([
            "topology", "generate", "multi_rack:racks=2,hosts_per_rack=2",
            "--out", str(topo_file), "--matrix-out", str(matrix_file),
        ]) == 0
        capsys.readouterr()
        assert main(["topology", "inspect", str(topo_file)]) == 0
        assert "topology file" in capsys.readouterr().out
        assert main(["topology", "inspect", str(matrix_file)]) == 0
        out = capsys.readouterr().out
        assert "probe matrix" in out
        assert "latency" in out

    def test_list_mentions_generators(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fat_tree" in out
        assert "cloud_spot_mix" in out


class TestTuningCommands:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        """Point every persistent cache at a throwaway directory."""
        import repro.tuning.tuner as tuner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(tuner, "_process_cache", None)
        return tmp_path

    def test_tune_prints_the_decision(self, capsys):
        assert main(["tune", "gather", "testbed:4", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "gather(n=2000)" in out
        assert "plans priced analytically" in out
        assert "verdict" in out

    def test_tune_is_idempotent_across_invocations(self, capsys):
        assert main(["tune", "broadcast", "two-lans", "--n", "2000"]) == 0
        cold = capsys.readouterr().out
        assert main(["tune", "broadcast", "two-lans", "--n", "2000"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_tune_rejects_untunable_collectives(self):
        with pytest.raises(SystemExit):
            main(["tune", "scatter", "testbed:4"])

    def test_run_with_tuned_schedule(self, capsys):
        assert main([
            "run", "broadcast", "two-lans", "--n", "500",
            "--schedule", "tuned",
        ]) == 0
        out = capsys.readouterr().out
        assert "tuned schedule:" in out
        assert "simulated:" in out

    def test_experiment_schedule_flag(self, capsys):
        assert main(["experiment", "fig3a", "--schedule", "tuned"]) == 0
        assert "[fig3a]" in capsys.readouterr().out

    def test_experiment_schedule_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table1", "--schedule", "tuned"])

    def test_cache_stats_prune_clear(self, tmp_path, capsys):
        assert main(["tune", "gather", "testbed:4", "--n", "2000"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "sweeps cache at" in out
        assert "decisions cache at" in out
        assert "1 entries" in out
        assert main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "decisions: removed 1 item(s)" in out
        assert main(["cache", "stats"]) == 0
        assert "0 entries" in capsys.readouterr().out
        # --force re-tunes (the first decision is still memoized in
        # this process) and re-persists the decision to disk
        assert main(
            ["tune", "gather", "testbed:4", "--n", "2000", "--force"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "decisions: cleared (1 entries)" in out

    def test_cache_prune_honours_max_bytes(self, capsys):
        assert main(["tune", "gather", "testbed:4", "--n", "2000"]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--max-bytes", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "decisions: removed 0 item(s)" in out

    def test_cache_stats_breaks_down_tiers(self, capsys):
        """stats counts the decisions tier apart from sweeps, plus a total."""
        assert main(["tune", "gather", "testbed:4", "--n", "2000"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        # The tune above stored exactly one decision and no sweep results.
        assert "(sweeps 0, decisions 1)" in out
        assert "total: 1 entries" in out

    def test_cache_prune_prints_total(self, capsys):
        assert main(["tune", "gather", "testbed:4", "--n", "2000"]) == 0
        capsys.readouterr()
        assert main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "sweeps: removed 0 item(s)" in out
        assert "decisions: removed 1 item(s)" in out
        assert "total: removed 1 item(s)" in out


class TestServeCommand:
    def test_serve_default_session(self, capsys):
        assert main(["serve", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "serving session on two-lans:3" in out
        assert "goodput" in out
        assert "p50" in out

    def test_serve_from_config_file(self, tmp_path, capsys):
        from repro.serve import default_config

        config = default_config(seed=7, duration=5.0)
        path = tmp_path / "service.json"
        path.write_text(config.to_json())
        assert main(["serve", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "seed 7" in out

    def test_serve_overrides(self, capsys):
        assert main([
            "serve", "--duration", "5", "--rate", "1.0", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "seed 3" in out
        assert "1 req/s open-loop" in out

    def test_serve_metrics_export(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.prom"
        assert main([
            "serve", "--duration", "5", "--metrics-out", str(metrics_file),
        ]) == 0
        text = metrics_file.read_text()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_latency_seconds_bucket" in text


class TestVersionSingleSource:
    """One version string, asserted everywhere it is declared."""

    def test_cli_version_flag_matches_package(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_pyproject_matches_package(self):
        import pathlib

        import repro

        tomllib = pytest.importorskip("tomllib")
        pyproject = pathlib.Path(__file__).parents[2] / "pyproject.toml"
        if not pyproject.exists():
            pytest.skip("pyproject.toml not present in this checkout")
        data = tomllib.loads(pyproject.read_text())
        assert data["project"]["version"] == repro.__version__
