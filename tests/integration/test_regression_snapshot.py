"""Golden-value regression tests.

Every simulation in this library is deterministic, so key experiment
numbers can be pinned.  If a refactor changes any of these, either it
introduced a behaviour change (fix it) or it deliberately recalibrated
the simulator (update the goldens *and* EXPERIMENTS.md together).
"""

import pytest

from repro.cluster import ucf_testbed
from repro.collectives import (
    RootPolicy,
    WorkloadPolicy,
    run_broadcast,
    run_gather,
)
from repro.experiments import fig3a_gather_root

REL = 1e-6


class TestGoldenValues:
    def test_gather_fast_root_time(self):
        outcome = run_gather(
            ucf_testbed(10), 25_600,
            root=RootPolicy.FASTEST, workload=WorkloadPolicy.EQUAL,
        )
        assert outcome.time == pytest.approx(0.0127183, rel=1e-3)

    def test_fig3a_key_points(self):
        report = fig3a_gather_root((100,), (2, 10))
        series = report.series["100 KB"]
        assert series[2] == pytest.approx(0.870, abs=0.005)
        assert series[10] == pytest.approx(1.312, abs=0.01)

    def test_broadcast_factor(self):
        topo = ucf_testbed(10)
        t_s = run_broadcast(topo, 25_600, root=RootPolicy.SLOWEST).time
        t_f = run_broadcast(topo, 25_600, root=RootPolicy.FASTEST).time
        assert t_s / t_f == pytest.approx(1.208, abs=0.01)

    def test_exact_repeatability(self):
        """Same run, bit-identical times — the determinism contract."""
        a = run_gather(ucf_testbed(7), 50_000, seed=42)
        b = run_gather(ucf_testbed(7), 50_000, seed=42)
        assert a.time == b.time  # exact float equality, no tolerance
        assert a.values == b.values
        assert a.predicted_time == b.predicted_time
