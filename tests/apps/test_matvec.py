"""Tests for the distributed matrix-vector application."""

import numpy as np
import pytest

from repro.apps import run_matvec
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.util.rng import RngStream

N = 200


def serial_reference(outcome, n, seed):
    """Recompute y = A @ x serially from the same streams."""
    counts = [v[0] for _pid, v in sorted(outcome.values.items())]
    x = RngStream(seed, "matvec-x").generator.random(n)
    y_parts = []
    for pid, rows in enumerate(counts):
        block = RngStream(seed, "matvec-A", pid).generator.random((rows, n))
        y_parts.append(block @ x)
    return np.concatenate(y_parts)


class TestCorrectness:
    def test_matches_serial(self, testbed_small):
        outcome = run_matvec(testbed_small, N, seed=2)
        root = outcome.runtime.fastest_pid
        expected = serial_reference(outcome, N, 2)
        assert outcome.values[root][1] == pytest.approx(float(expected.sum()))

    def test_rows_conserved(self, testbed_small):
        outcome = run_matvec(testbed_small, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_balanced_rows_track_fractions(self, testbed_small):
        outcome = run_matvec(testbed_small, N, workload=WorkloadPolicy.BALANCED)
        for pid, (rows, _checksum) in outcome.values.items():
            ideal = outcome.runtime.fraction_of(pid) * N
            assert abs(rows - ideal) < 1.0

    def test_hbsp2(self, fig1_machine):
        outcome = run_matvec(fig1_machine, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_slow_root(self, testbed_small):
        outcome = run_matvec(testbed_small, N, root=RootPolicy.SLOWEST)
        root = outcome.runtime.slowest_pid
        expected = serial_reference(outcome, N, 0)
        assert outcome.values[root][1] == pytest.approx(float(expected.sum()))

    def test_supersteps(self, testbed_small):
        assert run_matvec(testbed_small, N).supersteps == 2


class TestBalanceBenefit:
    def test_balanced_wins_when_compute_dominates(self, testbed):
        """With O(n^2) flops per superstep, the slowest machine's share
        decides the barrier time; balancing must win clearly."""
        equal = run_matvec(testbed, 1600, workload=WorkloadPolicy.EQUAL)
        balanced = run_matvec(testbed, 1600, workload=WorkloadPolicy.BALANCED)
        assert equal.time / balanced.time > 1.3

    def test_benefit_grows_with_compute_share(self, testbed):
        small = run_matvec(testbed, 200, workload=WorkloadPolicy.EQUAL).time / run_matvec(
            testbed, 200, workload=WorkloadPolicy.BALANCED
        ).time
        large = run_matvec(testbed, 1000, workload=WorkloadPolicy.EQUAL).time / run_matvec(
            testbed, 1000, workload=WorkloadPolicy.BALANCED
        ).time
        assert large > small
