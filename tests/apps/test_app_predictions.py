"""Tests for the application-level cost predictions."""

import pytest

from repro.apps import run_histogram, run_matvec
from repro.collectives import WorkloadPolicy


class TestMatvecPrediction:
    def test_ledger_present_and_itemised(self, testbed_small):
        outcome = run_matvec(testbed_small, 300)
        assert outcome.predicted is not None
        labels = [s.label for s in outcome.predicted.steps]
        assert any("all-gather x" in label for label in labels)
        assert any("multiply" in label for label in labels)

    def test_ballpark(self, testbed_small):
        outcome = run_matvec(testbed_small, 600)
        assert outcome.predicted_time <= outcome.time <= 2.5 * outcome.predicted_time

    def test_compute_term_dominates_at_scale(self, testbed_small):
        outcome = run_matvec(testbed_small, 1500)
        assert outcome.predicted.component("w") > outcome.predicted.component("gh")

    def test_prediction_tracks_workload_policy(self, testbed_small):
        equal = run_matvec(testbed_small, 1200, workload=WorkloadPolicy.EQUAL)
        balanced = run_matvec(testbed_small, 1200, workload=WorkloadPolicy.BALANCED)
        # The model predicts balanced is faster, matching simulation.
        assert balanced.predicted_time < equal.predicted_time
        assert balanced.time < equal.time


class TestHistogramPrediction:
    def test_ledger_composition(self, testbed_small):
        outcome = run_histogram(testbed_small, 100_000)
        labels = [s.label for s in outcome.predicted.steps]
        assert any(label.startswith("map") for label in labels)
        assert any(label.startswith("reduce/") for label in labels)

    def test_ballpark(self, testbed_small):
        outcome = run_histogram(testbed_small, 500_000)
        assert outcome.predicted_time <= outcome.time <= 2.0 * outcome.predicted_time

    def test_hbsp2_ballpark(self, fig1_machine):
        outcome = run_histogram(fig1_machine, 500_000)
        assert outcome.predicted_time <= outcome.time <= 2.5 * outcome.predicted_time

    def test_map_w_scales_with_n(self, testbed_small):
        small = run_histogram(testbed_small, 100_000)
        large = run_histogram(testbed_small, 400_000)
        assert large.predicted.component("w") > 3 * small.predicted.component("w")


class TestOutcomeApi:
    def test_predicted_time_none_for_unpredicted_apps(self, testbed_small):
        from repro.apps import run_sample_sort

        outcome = run_sample_sort(testbed_small, 10_000)
        assert outcome.predicted is None
        assert outcome.predicted_time is None
