"""Tests for the distributed histogram application."""

import pytest

from repro.apps import run_histogram
from repro.collectives import RootPolicy, WorkloadPolicy

N = 30_000


def root_total(outcome):
    holders = [v[1] for v in outcome.values.values() if v[1] > 0]
    assert len(holders) == 1
    return holders[0]


class TestCorrectness:
    def test_counts_everything_once(self, testbed_small):
        assert root_total(run_histogram(testbed_small, N)) == N

    def test_hbsp2(self, fig1_machine):
        assert root_total(run_histogram(fig1_machine, N)) == N

    def test_hbsp3(self, grid):
        assert root_total(run_histogram(grid, N)) == N

    def test_items_binned_match_counts(self, testbed_small):
        outcome = run_histogram(testbed_small, N)
        counts = outcome.runtime.partition(N, balanced=True)
        for pid, (binned, _total) in outcome.values.items():
            assert binned == counts[pid]

    def test_equal_workload(self, testbed_small):
        outcome = run_histogram(testbed_small, N, workload=WorkloadPolicy.EQUAL)
        assert root_total(outcome) == N

    def test_slow_root(self, fig1_machine):
        outcome = run_histogram(fig1_machine, N, root=RootPolicy.SLOWEST)
        slow = outcome.runtime.slowest_pid
        assert outcome.values[slow][1] == N

    def test_bins_parameter(self, testbed_small):
        assert root_total(run_histogram(testbed_small, N, bins=7)) == N

    def test_supersteps_equal_k(self, testbed_small, fig1_machine, grid):
        assert run_histogram(testbed_small, N).supersteps == 1
        assert run_histogram(fig1_machine, N).supersteps == 2
        assert run_histogram(grid, N).supersteps == 3


class TestHierarchy:
    def test_traffic_independent_of_n(self, grid):
        """Only bin vectors cross the network, so doubling n changes
        the time only through local compute."""
        small = run_histogram(grid, N, trace=True)
        large = run_histogram(grid, 4 * N, trace=True)
        small_bytes = sum(
            r.detail["nbytes"] for r in small.result.trace.filter("inject")
        )
        large_bytes = sum(
            r.detail["nbytes"] for r in large.result.trace.filter("inject")
        )
        assert small_bytes == large_bytes
        assert large.time > small.time  # compute grew
