"""Tests for the parallel sample sort application."""

import numpy as np
import pytest

from repro.apps import run_sample_sort
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.collectives.base import make_items

N = 40_000


def check_globally_sorted(outcome, n):
    """Concatenating per-pid outputs in pid order is the sorted input."""
    total = sum(v[0] for v in outcome.values.values())
    assert total == n
    assert all(v[3] for v in outcome.values.values()), "local runs must be sorted"
    ordered = [(pid, v) for pid, v in sorted(outcome.values.items()) if v[0] > 0]
    for (_p1, a), (_p2, b) in zip(ordered, ordered[1:]):
        assert a[2] <= b[1], "pid order must be value order"


class TestCorrectness:
    def test_hbsp1(self, testbed_small):
        check_globally_sorted(run_sample_sort(testbed_small, N), N)

    def test_hbsp2(self, fig1_machine):
        check_globally_sorted(run_sample_sort(fig1_machine, N), N)

    def test_hbsp3(self, grid):
        check_globally_sorted(run_sample_sort(grid, N), N)

    def test_checksum_is_input_multiset(self, testbed_small):
        outcome = run_sample_sort(testbed_small, N, seed=4)
        counts = outcome.runtime.partition(N, balanced=True)
        expected = sum(
            int(make_items(4, j, counts[j]).astype(np.int64).sum())
            for j in range(outcome.runtime.nprocs)
        )
        assert sum(v[4] for v in outcome.values.values()) == expected

    def test_equal_workload(self, testbed_small):
        outcome = run_sample_sort(testbed_small, N, workload=WorkloadPolicy.EQUAL)
        check_globally_sorted(outcome, N)

    def test_slow_root(self, testbed_small):
        outcome = run_sample_sort(testbed_small, N, root=RootPolicy.SLOWEST)
        check_globally_sorted(outcome, N)

    def test_tiny_input(self, testbed_small):
        check_globally_sorted(run_sample_sort(testbed_small, 10), 10)

    def test_deterministic(self, testbed_small):
        a = run_sample_sort(testbed_small, N, seed=1)
        b = run_sample_sort(testbed_small, N, seed=1)
        assert a.time == b.time
        assert a.values == b.values

    def test_supersteps(self, testbed_small):
        # samples -> splitters -> exchange = 3 supersteps on HBSP^1.
        assert run_sample_sort(testbed_small, N).supersteps == 3


class TestBalanceBenefit:
    def test_splitters_keep_buckets_roughly_even(self, testbed):
        """Regular sampling keeps the max bucket within a small factor
        of the mean for uniform data."""
        outcome = run_sample_sort(testbed, 200_000, workload=WorkloadPolicy.EQUAL)
        sizes = [v[0] for v in outcome.values.values()]
        assert max(sizes) < 3 * (sum(sizes) / len(sizes))

    def test_balanced_wins_on_heterogeneous_machine(self, testbed):
        equal = run_sample_sort(testbed, 400_000, workload=WorkloadPolicy.EQUAL)
        balanced = run_sample_sort(testbed, 400_000, workload=WorkloadPolicy.BALANCED)
        assert equal.time > balanced.time
