"""Tests for the distributed Jacobi solver."""

import numpy as np
import pytest

from repro.apps import run_jacobi
from repro.collectives import WorkloadPolicy
from repro.errors import CollectiveError


def exact_checksum(n: int) -> float:
    """Sum over the grid of the analytic solution u(x) = x(1-x)/2."""
    h = 1.0 / (n + 1)
    xs = np.arange(1, n + 1) * h
    return float((xs * (1 - xs) / 2).sum())


class TestConvergence:
    def test_converges_to_analytic_solution(self, testbed_small):
        n = 32
        outcome = run_jacobi(
            testbed_small, n, max_iterations=3000, check_every=200, tol=1e-3
        )
        checksum = sum(v[3] for v in outcome.values.values())
        assert checksum == pytest.approx(exact_checksum(n), rel=1e-2)
        residuals = {v[2] for v in outcome.values.values()}
        assert len(residuals) == 1  # everyone agrees (broadcast verdict)
        assert residuals.pop() < 1e-3

    def test_early_stopping(self, testbed_small):
        outcome = run_jacobi(
            testbed_small, 32, max_iterations=5000, check_every=100, tol=1e-3
        )
        iterations = {v[1] for v in outcome.values.values()}
        assert len(iterations) == 1  # all stop together
        assert iterations.pop() < 5000  # stopped early

    def test_residual_decreases_with_iterations(self, testbed_small):
        short = run_jacobi(testbed_small, 32, max_iterations=100, check_every=100)
        long = run_jacobi(testbed_small, 32, max_iterations=800, check_every=100)
        r_short = next(iter({v[2] for v in short.values.values()}))
        r_long = next(iter({v[2] for v in long.values.values()}))
        assert r_long < r_short

    def test_cells_conserved(self, testbed_small):
        outcome = run_jacobi(testbed_small, 64, max_iterations=10)
        assert sum(v[0] for v in outcome.values.values()) == 64


class TestConfigurations:
    def test_hbsp2(self, fig1_machine):
        outcome = run_jacobi(fig1_machine, 64, max_iterations=50, check_every=25)
        assert sum(v[0] for v in outcome.values.values()) == 64

    def test_equal_workload(self, testbed_small):
        outcome = run_jacobi(
            testbed_small, 64, max_iterations=10, workload=WorkloadPolicy.EQUAL
        )
        sizes = [v[0] for v in outcome.values.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_too_small_grid_rejected(self, testbed_small):
        with pytest.raises(CollectiveError, match="grid points"):
            run_jacobi(testbed_small, 8)

    def test_supersteps_track_iterations(self, testbed_small):
        outcome = run_jacobi(
            testbed_small, 32, max_iterations=10, check_every=100
        )
        # 10 halo supersteps + 2 for the final residual check.
        assert outcome.supersteps == 12

    def test_deterministic(self, testbed_small):
        a = run_jacobi(testbed_small, 32, max_iterations=50)
        b = run_jacobi(testbed_small, 32, max_iterations=50)
        assert a.time == b.time
        assert a.values == b.values


class TestBalanceBenefit:
    def test_balanced_wins_in_steady_state(self, testbed):
        """Per-iteration compute is balanced by c_j while halo traffic
        is constant — the textbook case for the paper's rule."""
        equal = run_jacobi(
            testbed, 1_000_000, max_iterations=20, check_every=1000,
            workload=WorkloadPolicy.EQUAL,
        )
        balanced = run_jacobi(
            testbed, 1_000_000, max_iterations=20, check_every=1000,
            workload=WorkloadPolicy.BALANCED,
        )
        assert equal.time / balanced.time > 1.4
