"""Tests for the HBSP^k reduction."""

import numpy as np
import pytest

from repro.collectives import RootPolicy, run_gather, run_reduce
from repro.collectives.base import make_items

WIDTH = 2_000


def reduce_root(outcome):
    holders = [pid for pid, (count, _s) in outcome.values.items() if count > 0]
    assert len(holders) == 1
    return holders[0]


class TestCorrectness:
    def test_root_holds_elementwise_sum(self, testbed_small):
        outcome = run_reduce(testbed_small, WIDTH, seed=3)
        pid = reduce_root(outcome)
        expected = sum(
            int(make_items(3, j, WIDTH).astype(np.int64).sum())
            for j in range(outcome.runtime.nprocs)
        )
        assert outcome.values[pid] == (WIDTH, expected)

    def test_hbsp2(self, fig1_machine):
        outcome = run_reduce(fig1_machine, WIDTH)
        assert outcome.values[reduce_root(outcome)][0] == WIDTH

    def test_hbsp3(self, grid):
        outcome = run_reduce(grid, WIDTH)
        assert outcome.values[reduce_root(outcome)][0] == WIDTH

    def test_root_override(self, fig1_machine):
        outcome = run_reduce(fig1_machine, WIDTH, root=RootPolicy.SLOWEST)
        assert reduce_root(outcome) == outcome.runtime.slowest_pid

    def test_result_independent_of_root(self, testbed_small):
        a = run_reduce(testbed_small, WIDTH, root=0, seed=1)
        b = run_reduce(testbed_small, WIDTH, root=3, seed=1)
        assert a.values[reduce_root(a)][1] == b.values[reduce_root(b)][1]


class TestHierarchyAdvantage:
    def test_reduce_cheaper_than_gather_over_wan(self, grid):
        """Combining at coordinators means only `width` items cross
        each level — the reduction's WAN step is far cheaper than the
        gather's, which hauls every item to the root."""
        n = WIDTH * grid.num_machines
        gather = run_gather(grid, n)
        reduce_out = run_reduce(grid, WIDTH)
        g_super3 = next(s for s in gather.predicted.steps if s.level == 3)
        r_super3 = next(s for s in reduce_out.predicted.steps if s.level == 3)
        # The reduction crosses the WAN with one `width` vector per
        # sender (8-byte accumulators); the gather hauls every subtree's
        # items (4-byte ints): p/2 subtree items vs 1 vector => cheaper.
        assert r_super3.gh < g_super3.gh
        # And the gap widens with the problem: gather grows with n,
        # reduce stays at `width`.
        gather_big = run_gather(grid, 4 * n)
        g_big = next(s for s in gather_big.predicted.steps if s.level == 3)
        assert r_super3.gh < g_big.gh / 3

    def test_compute_charged(self, testbed_small):
        outcome = run_reduce(testbed_small, WIDTH, trace=True)
        assert outcome.result.trace.total_duration("compute") > 0

    def test_predicted_w_term_present(self, testbed_small):
        outcome = run_reduce(testbed_small, WIDTH)
        assert outcome.predicted.component("w") > 0


class TestTiming:
    def test_prediction_ballpark(self, testbed_small):
        outcome = run_reduce(testbed_small, WIDTH * 10)
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time

    def test_time_scales_with_width(self, testbed_small):
        small = run_reduce(testbed_small, WIDTH)
        large = run_reduce(testbed_small, WIDTH * 8)
        assert large.time > small.time
