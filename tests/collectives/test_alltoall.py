"""Tests for the total exchange (all-to-all personalized)."""

import pytest

from repro.collectives import WorkloadPolicy, run_alltoall
from repro.collectives.alltoall import block_counts

N = 25_600


class TestBlockCounts:
    def test_rows_conserve_counts(self):
        counts = [10, 20, 30]
        blocks = block_counts(counts, 3)
        for i in range(3):
            assert sum(blocks[i]) == counts[i]

    def test_doubly_proportional(self):
        counts = [500, 300, 200]
        blocks = block_counts(counts, 3)
        # Row i's blocks follow the global proportions.
        for i in range(3):
            for j in range(3):
                assert abs(blocks[i][j] - counts[i] * counts[j] / 1000) < 1.0

    def test_zero_row(self):
        blocks = block_counts([0, 10], 2)
        assert blocks[0] == [0, 0]
        assert sum(blocks[1]) == 10

    def test_all_zero(self):
        assert block_counts([0, 0], 2) == [[0, 0], [0, 0]]


class TestCorrectness:
    def test_total_conserved(self, testbed_small):
        outcome = run_alltoall(testbed_small, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_each_pid_receives_its_column(self, testbed_small):
        outcome = run_alltoall(testbed_small, N)
        counts = outcome.runtime.partition(N, balanced=True)
        blocks = block_counts(counts, outcome.runtime.nprocs)
        for pid, (size, _checksum) in outcome.values.items():
            expected = sum(blocks[i][pid] for i in range(outcome.runtime.nprocs))
            assert size == expected

    def test_hbsp2(self, fig1_machine):
        outcome = run_alltoall(fig1_machine, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_single_superstep(self, testbed_small):
        assert run_alltoall(testbed_small, N).supersteps == 1

    def test_equal_workload(self, testbed_small):
        outcome = run_alltoall(testbed_small, N, workload=WorkloadPolicy.EQUAL)
        assert sum(v[0] for v in outcome.values.values()) == N


class TestTiming:
    def test_prediction_ballpark(self, testbed_small):
        outcome = run_alltoall(testbed_small, 4 * N)
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time

    def test_heaviest_collective_on_flat_lan(self, testbed_small):
        """The total exchange moves the most data: its h-relation beats
        the gather's."""
        from repro.collectives import run_gather

        gather = run_gather(testbed_small, N)
        alltoall = run_alltoall(testbed_small, N)
        # Most of n crosses the wire either way, but alltoall has no
        # single endpoint doing all receives, so times are comparable;
        # the *predictions* reflect the same h-relation scale.
        assert alltoall.predicted_time == pytest.approx(
            gather.predicted_time, rel=1.0
        )

    def test_deterministic(self, testbed_small):
        assert (
            run_alltoall(testbed_small, N, seed=4).time
            == run_alltoall(testbed_small, N, seed=4).time
        )
