"""Executing explicit SchedulePlans through the gather/broadcast runners.

Every plan in the enumerated space must (a) move the right data, (b)
cost in the simulator exactly what the plan-aware predictors price via
the same ledger the tuner ranks with, and (c) run bit-identically on
the macro-event fast path and the object-level engine.  The default
plan must be indistinguishable from a plan-less run.
"""

import pytest

from repro.collectives import run_broadcast, run_gather
from repro.errors import CollectiveError
from repro.tuning import (
    LevelSchedule,
    SchedulePlan,
    default_plan,
    enumerate_plans,
)

N = 4_000


def gather_root(outcome):
    holders = [pid for pid, (count, _sum) in outcome.values.items() if count > 0]
    assert len(holders) == 1
    return holders[0]


def assert_everyone_has_everything(outcome, n=N):
    sizes = {v[0] for v in outcome.values.values()}
    checksums = {v[1] for v in outcome.values.values()}
    assert sizes == {n}
    assert len(checksums) == 1


class TestPlanCorrectness:
    def test_every_gather_plan_moves_the_data(self, fig1_machine):
        baseline = run_gather(fig1_machine, N, seed=3)
        want = baseline.values[gather_root(baseline)]
        for plan in enumerate_plans("gather", 2, segments=(1, 3)):
            outcome = run_gather(fig1_machine, N, seed=3, plan=plan)
            assert outcome.values[gather_root(outcome)] == want, plan.key

    def test_every_broadcast_plan_moves_the_data(self, fig1_machine):
        for plan in enumerate_plans("broadcast", 2, segments=(1, 3)):
            outcome = run_broadcast(fig1_machine, N, seed=3, plan=plan)
            assert_everyone_has_everything(outcome)

    def test_plans_work_on_three_levels(self, grid):
        gather = SchedulePlan(
            "gather",
            (
                LevelSchedule("flat", 2),
                LevelSchedule("binomial"),
                LevelSchedule("flat"),
            ),
        )
        outcome = run_gather(grid, N, plan=gather)
        assert outcome.values[gather_root(outcome)][0] == N
        bcast = SchedulePlan(
            "broadcast",
            (
                LevelSchedule("binomial"),
                LevelSchedule("one", 2),
                LevelSchedule("two"),
            ),
        )
        assert_everyone_has_everything(run_broadcast(grid, N, plan=bcast))

    def test_plans_work_from_any_root(self, fig1_machine):
        plan = SchedulePlan(
            "gather", (LevelSchedule("binomial"), LevelSchedule("flat", 2))
        )
        for root in (0, 4, 8):
            outcome = run_gather(fig1_machine, N, root=root, plan=plan)
            assert gather_root(outcome) == root


class TestPlanStructure:
    def test_segments_multiply_supersteps(self, testbed_small):
        plan = SchedulePlan("gather", (LevelSchedule("flat", 3),))
        assert run_gather(testbed_small, N, plan=plan).supersteps == 3

    def test_binomial_runs_log_rounds(self, testbed_small):
        # 4 machines in one cluster: ceil(log2 4) = 2 rounds.
        plan = SchedulePlan("gather", (LevelSchedule("binomial"),))
        assert run_gather(testbed_small, N, plan=plan).supersteps == 2

    def test_prediction_prices_the_plan(self, fig1_machine):
        plan = SchedulePlan(
            "broadcast", (LevelSchedule("one", 2), LevelSchedule("binomial"))
        )
        outcome = run_broadcast(fig1_machine, N, plan=plan)
        assert plan.key in outcome.name
        labels = " ".join(s.label for s in outcome.predicted.steps)
        assert "binomial" in labels


class TestPlanIdentities:
    def test_default_plan_is_the_planless_run(self, fig1_machine):
        for op, run in (("gather", run_gather), ("broadcast", run_broadcast)):
            plain = run(fig1_machine, N, seed=2)
            planned = run(fig1_machine, N, seed=2, plan=default_plan(op, 2))
            assert planned.time == plain.time
            assert planned.values == plain.values
            assert planned.predicted_time == plain.predicted_time

    @pytest.mark.parametrize(
        "op, run",
        [("gather", run_gather), ("broadcast", run_broadcast)],
        ids=["gather", "broadcast"],
    )
    def test_macro_and_object_paths_agree_on_every_plan(
        self, fig1_machine, op, run
    ):
        for plan in enumerate_plans(op, 2, segments=(1, 3)):
            fast = run(fig1_machine, N, plan=plan, macro=True)
            slow = run(fig1_machine, N, plan=plan, macro=False)
            assert fast.time == slow.time, plan.key
            assert fast.values == slow.values, plan.key
            assert fast.supersteps == slow.supersteps, plan.key


class TestPlanValidation:
    def test_wrong_op_plan_rejected(self, fig1_machine):
        with pytest.raises(CollectiveError, match="expected 'gather'"):
            run_gather(fig1_machine, N, plan=default_plan("broadcast", 2))
        with pytest.raises(CollectiveError, match="expected 'broadcast'"):
            run_broadcast(fig1_machine, N, plan=default_plan("gather", 2))

    def test_wrong_k_plan_rejected(self, fig1_machine):
        with pytest.raises(CollectiveError, match="out of range"):
            run_gather(fig1_machine, N, plan=default_plan("gather", 1))
        with pytest.raises(CollectiveError, match="levels"):
            run_broadcast(fig1_machine, N, plan=default_plan("broadcast", 3))
