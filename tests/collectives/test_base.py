"""Tests for collectives.base helpers."""

import numpy as np
import pytest

from repro.collectives.base import (
    CollectiveOutcome,
    concat_payloads,
    make_items,
    make_runtime,
)
from repro.model.cost import CostLedger


class TestMakeItems:
    def test_deterministic_per_seed_and_pid(self):
        np.testing.assert_array_equal(make_items(1, 0, 100), make_items(1, 0, 100))

    def test_different_pids_different_data(self):
        assert not np.array_equal(make_items(1, 0, 100), make_items(1, 1, 100))

    def test_different_seeds_different_data(self):
        assert not np.array_equal(make_items(1, 0, 100), make_items(2, 0, 100))

    def test_dtype_is_4_byte(self):
        assert make_items(0, 0, 10).dtype == np.int32

    def test_zero_count(self):
        assert make_items(0, 0, 0).size == 0

    def test_values_non_negative(self):
        assert make_items(0, 3, 1000).min() >= 0


class TestConcatPayloads:
    def test_empty_list(self):
        out = concat_payloads([])
        assert out.size == 0
        assert out.dtype == np.int32

    def test_order_preserved(self):
        a = np.array([1, 2], dtype=np.int32)
        b = np.array([3], dtype=np.int32)
        np.testing.assert_array_equal(concat_payloads([a, b]), [1, 2, 3])

    def test_handles_empty_members(self):
        a = np.array([], dtype=np.int32)
        b = np.array([7], dtype=np.int32)
        np.testing.assert_array_equal(concat_payloads([a, b]), [7])


class TestMakeRuntime:
    def test_fresh_runtime_each_call(self, testbed_small):
        first = make_runtime(testbed_small)
        second = make_runtime(testbed_small)
        assert first is not second
        assert first.engine is not second.engine

    def test_scores_forwarded(self, testbed_small):
        inverted = {m.name: 1.0 / m.cpu_rate for m in testbed_small.machines}
        runtime = make_runtime(testbed_small, scores=inverted)
        assert (
            runtime.topology.machines[runtime.fastest_pid].name == "sun-classic"
        )


class TestCollectiveOutcome:
    def test_predicted_time_property(self, testbed_small):
        ledger = CostLedger("x")
        ledger.charge("s", level=1, gh=2.0)
        outcome = CollectiveOutcome(
            name="demo",
            time=3.0,
            supersteps=1,
            values={},
            predicted=ledger,
            result=None,  # type: ignore[arg-type]
            runtime=None,  # type: ignore[arg-type]
        )
        assert outcome.predicted_time == 2.0
        assert "demo" in repr(outcome)
