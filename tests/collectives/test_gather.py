"""Tests for the HBSP^k gather collective."""

import numpy as np
import pytest

from repro.collectives import RootPolicy, WorkloadPolicy, run_gather
from repro.collectives.base import make_items


def root_pid(outcome):
    """The pid that ended up holding items."""
    holders = [pid for pid, (count, _sum) in outcome.values.items() if count > 0]
    assert len(holders) == 1
    return holders[0]


N = 25_600


class TestCorrectness:
    def test_root_collects_everything(self, testbed_small):
        outcome = run_gather(testbed_small, N)
        pid = root_pid(outcome)
        assert outcome.values[pid][0] == N

    def test_checksum_matches_generated_data(self, testbed_small):
        outcome = run_gather(testbed_small, N, seed=5)
        pid = root_pid(outcome)
        counts = outcome.runtime.partition(N, balanced=True)
        expected = sum(
            int(make_items(5, j, counts[j]).astype(np.int64).sum())
            for j in range(outcome.runtime.nprocs)
        )
        assert outcome.values[pid][1] == expected

    def test_default_root_is_fastest(self, testbed_small):
        outcome = run_gather(testbed_small, N)
        assert root_pid(outcome) == outcome.runtime.fastest_pid

    def test_explicit_root(self, testbed_small):
        outcome = run_gather(testbed_small, N, root=2)
        assert root_pid(outcome) == 2

    def test_slowest_root_policy(self, testbed_small):
        outcome = run_gather(testbed_small, N, root=RootPolicy.SLOWEST)
        assert root_pid(outcome) == outcome.runtime.slowest_pid

    def test_hbsp2_gather(self, fig1_machine):
        outcome = run_gather(fig1_machine, N)
        assert outcome.values[root_pid(outcome)][0] == N

    def test_hbsp3_gather(self, grid):
        outcome = run_gather(grid, N)
        assert outcome.values[root_pid(outcome)][0] == N

    def test_hbsp2_gather_on_any_root(self, fig1_machine):
        for root in (0, 4, 8):
            outcome = run_gather(fig1_machine, N, root=root)
            assert root_pid(outcome) == root
            assert outcome.values[root][0] == N

    def test_equal_workload(self, testbed_small):
        outcome = run_gather(testbed_small, N, workload=WorkloadPolicy.EQUAL)
        assert outcome.values[root_pid(outcome)][0] == N

    def test_explicit_counts(self, testbed_small):
        counts = [N, 0, 0, 0]
        outcome = run_gather(testbed_small, N, workload=counts, root=1)
        assert outcome.values[1][0] == N

    def test_supersteps_equal_k(self, testbed_small, fig1_machine, grid):
        assert run_gather(testbed_small, N).supersteps == 1
        assert run_gather(fig1_machine, N).supersteps == 2
        assert run_gather(grid, N).supersteps == 3


class TestTiming:
    def test_deterministic(self, testbed_small):
        a = run_gather(testbed_small, N, seed=1)
        b = run_gather(testbed_small, N, seed=1)
        assert a.time == b.time

    def test_time_scales_with_n(self, testbed_small):
        small = run_gather(testbed_small, N)
        large = run_gather(testbed_small, 4 * N)
        assert large.time > small.time

    def test_prediction_in_same_ballpark(self, testbed_small):
        """Simulated time within a small factor of the model prediction
        (the model omits pack/unpack, so simulated >= predicted)."""
        outcome = run_gather(testbed_small, 10 * N)
        assert outcome.predicted_time <= outcome.time <= 4 * outcome.predicted_time

    def test_fast_root_beats_slow_root_at_scale(self, testbed):
        slow = run_gather(testbed, N, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL)
        fast = run_gather(testbed, N, root=RootPolicy.FASTEST, workload=WorkloadPolicy.EQUAL)
        assert slow.time > fast.time

    def test_p2_inversion(self):
        """The paper's counterintuitive p = 2 result: the slow root wins."""
        from repro.cluster import ucf_testbed

        topo = ucf_testbed(2)
        slow = run_gather(topo, N, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL)
        fast = run_gather(topo, N, root=RootPolicy.FASTEST, workload=WorkloadPolicy.EQUAL)
        assert slow.time < fast.time

    def test_trace_shows_root_drain(self, testbed_small):
        outcome = run_gather(testbed_small, N, trace=True)
        pid = root_pid(outcome)
        root_name = f"pid{pid}@{outcome.runtime.topology.machines[pid].name}"
        drains = outcome.result.trace.by_actor("drain")
        assert drains.get(root_name, 0) == max(drains.values())
