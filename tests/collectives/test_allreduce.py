"""Tests for the all-reduce collective."""

import numpy as np
import pytest

from repro.collectives import run_allreduce
from repro.collectives.base import make_items
from repro.errors import CollectiveError

WIDTH = 2_000


def expected_sum(outcome, width, seed):
    return sum(
        int(make_items(seed, j, width).astype(np.int64).sum())
        for j in range(outcome.runtime.nprocs)
    )


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["tree", "direct"])
    def test_everyone_has_the_sum(self, testbed_small, strategy):
        outcome = run_allreduce(testbed_small, WIDTH, strategy=strategy, seed=3)
        sums = {v[1] for v in outcome.values.values()}
        assert sums == {expected_sum(outcome, WIDTH, 3)}
        assert {v[0] for v in outcome.values.values()} == {WIDTH}

    @pytest.mark.parametrize("strategy", ["tree", "direct"])
    def test_hbsp2(self, fig1_machine, strategy):
        outcome = run_allreduce(fig1_machine, WIDTH, strategy=strategy)
        assert len({v[1] for v in outcome.values.values()}) == 1

    def test_hbsp3(self, grid):
        outcome = run_allreduce(grid, WIDTH, strategy="tree")
        assert len({v[1] for v in outcome.values.values()}) == 1

    def test_strategies_agree(self, testbed_small):
        tree = run_allreduce(testbed_small, WIDTH, strategy="tree", seed=7)
        direct = run_allreduce(testbed_small, WIDTH, strategy="direct", seed=7)
        assert {v[1] for v in tree.values.values()} == {
            v[1] for v in direct.values.values()
        }

    def test_unknown_strategy_rejected(self, testbed_small):
        with pytest.raises(CollectiveError):
            run_allreduce(testbed_small, WIDTH, strategy="ring")

    def test_superstep_counts(self, testbed_small, fig1_machine):
        assert run_allreduce(testbed_small, WIDTH, strategy="direct").supersteps == 1
        # tree: k reduce steps + k broadcast steps.
        assert run_allreduce(testbed_small, WIDTH, strategy="tree").supersteps == 2
        assert run_allreduce(fig1_machine, WIDTH, strategy="tree").supersteps == 4


class TestStrategyTradeoff:
    def test_direct_wins_on_flat_lan(self, testbed):
        """On one Ethernet, one superstep beats the 2-step tree."""
        tree = run_allreduce(testbed, WIDTH, strategy="tree")
        direct = run_allreduce(testbed, WIDTH, strategy="direct")
        assert direct.time < tree.time

    def test_tree_wins_over_wan(self, grid):
        """On the grid, hauling p copies over the WAN loses to the
        combining tree — once the vector is large enough to outweigh
        the tree's extra synchronisation (the §3.4 trade-off)."""
        tree = run_allreduce(grid, 6 * WIDTH, strategy="tree")
        direct = run_allreduce(grid, 6 * WIDTH, strategy="direct")
        assert tree.time < direct.time

    def test_prediction_agrees_on_flat_machine(self, testbed):
        """On a 1-level machine the model prices both strategies
        correctly and picks the same winner as the simulation."""
        tree = run_allreduce(testbed, WIDTH, strategy="tree")
        direct = run_allreduce(testbed, WIDTH, strategy="direct")
        assert (tree.predicted_time < direct.predicted_time) == (
            tree.time < direct.time
        )

    def test_model_underpredicts_flat_exchange_over_hierarchy(self, grid):
        """The documented HBSP^k limitation: a flat exchange crossing
        the WAN is under-predicted (no per-wire term in g·h), while the
        level-structured tree stays within its usual envelope."""
        direct = run_allreduce(grid, 6 * WIDTH, strategy="direct")
        tree = run_allreduce(grid, 6 * WIDTH, strategy="tree")
        direct_ratio = direct.time / direct.predicted_time
        tree_ratio = tree.time / tree.predicted_time
        assert direct_ratio > tree_ratio * 1.5

    def test_prediction_ballpark(self, testbed_small):
        outcome = run_allreduce(testbed_small, WIDTH * 4, strategy="direct")
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time
