"""Tests for the prefix-sum scan."""

import numpy as np
import pytest

from repro.collectives import run_scan
from repro.collectives.base import make_items

WIDTH = 1_000


class TestCorrectness:
    def test_inclusive_prefix_sums(self, testbed_small):
        outcome = run_scan(testbed_small, WIDTH, seed=6)
        running = np.zeros(WIDTH, dtype=np.int64)
        for pid in range(outcome.runtime.nprocs):
            running += make_items(6, pid, WIDTH).astype(np.int64)
            assert outcome.values[pid] == (WIDTH, int(running.sum()))

    def test_pid0_keeps_own_vector(self, testbed_small):
        outcome = run_scan(testbed_small, WIDTH, seed=6)
        own = int(make_items(6, 0, WIDTH).astype(np.int64).sum())
        assert outcome.values[0][1] == own

    def test_last_pid_has_global_sum(self, testbed_small):
        outcome = run_scan(testbed_small, WIDTH, seed=6)
        total = sum(
            int(make_items(6, j, WIDTH).astype(np.int64).sum())
            for j in range(outcome.runtime.nprocs)
        )
        last = outcome.runtime.nprocs - 1
        assert outcome.values[last][1] == total

    def test_hbsp2(self, fig1_machine):
        outcome = run_scan(fig1_machine, WIDTH)
        assert all(v[0] == WIDTH for v in outcome.values.values())

    def test_single_superstep(self, testbed_small):
        assert run_scan(testbed_small, WIDTH).supersteps == 1


class TestTiming:
    def test_prediction_ballpark(self, testbed_small):
        outcome = run_scan(testbed_small, WIDTH * 20)
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time

    def test_w_term_in_prediction(self, testbed_small):
        outcome = run_scan(testbed_small, WIDTH)
        assert outcome.predicted.component("w") > 0

    def test_deterministic(self, testbed_small):
        assert (
            run_scan(testbed_small, WIDTH, seed=1).time
            == run_scan(testbed_small, WIDTH, seed=1).time
        )
