"""Tests for the HBSP^k all-gather."""

import pytest

from repro.collectives import run_allgather
from repro.errors import CollectiveError

N = 25_600


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["direct", "hierarchical"])
    def test_everyone_gets_everything(self, testbed_small, strategy):
        outcome = run_allgather(testbed_small, N, strategy=strategy)
        sizes = {v[0] for v in outcome.values.values()}
        checksums = {v[1] for v in outcome.values.values()}
        assert sizes == {N}
        assert len(checksums) == 1

    @pytest.mark.parametrize("strategy", ["direct", "hierarchical"])
    def test_hbsp2(self, fig1_machine, strategy):
        outcome = run_allgather(fig1_machine, N, strategy=strategy)
        assert {v[0] for v in outcome.values.values()} == {N}

    def test_strategies_agree_on_data(self, testbed_small):
        direct = run_allgather(testbed_small, N, strategy="direct", seed=2)
        hier = run_allgather(testbed_small, N, strategy="hierarchical", seed=2)
        assert (
            set(v[1] for v in direct.values.values())
            == set(v[1] for v in hier.values.values())
        )

    def test_unknown_strategy_rejected(self, testbed_small):
        with pytest.raises(CollectiveError):
            run_allgather(testbed_small, N, strategy="magic")

    def test_superstep_counts(self, testbed_small):
        direct = run_allgather(testbed_small, N, strategy="direct")
        assert direct.supersteps == 1
        hier = run_allgather(testbed_small, N, strategy="hierarchical")
        assert hier.supersteps == 2  # gather + one-phase rebroadcast


class TestStrategyTradeoff:
    def test_direct_wins_on_flat_lan(self, testbed):
        """On one Ethernet the single total exchange beats two phases."""
        direct = run_allgather(testbed, N, strategy="direct")
        hier = run_allgather(testbed, N, strategy="hierarchical")
        assert direct.time < hier.time

    def test_prediction_ballpark(self, testbed_small):
        outcome = run_allgather(testbed_small, 4 * N, strategy="direct")
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time

    def test_hierarchical_prediction_composes(self, testbed_small):
        outcome = run_allgather(testbed_small, N, strategy="hierarchical")
        labels = [s.label for s in outcome.predicted.steps]
        assert any(label.startswith("gather/") for label in labels)
        assert any(label.startswith("broadcast/") for label in labels)
