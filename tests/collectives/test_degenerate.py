"""Degenerate-configuration tests across every collective.

Single-machine topologies, empty problems, and width-1 vectors — the
corners where off-by-one bugs in partitioning and self-send handling
live.
"""

import pytest

from repro.cluster import ucf_testbed
from repro.collectives import (
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_gather,
    run_reduce,
    run_scan,
    run_scatter,
)


@pytest.fixture
def solo():
    return ucf_testbed(1)


@pytest.fixture
def pair():
    return ucf_testbed(2)


class TestSingleMachine:
    """p = 1: every collective is a no-op data-wise and near-free."""

    def test_gather(self, solo):
        outcome = run_gather(solo, 1000)
        assert outcome.values[0][0] == 1000
        assert outcome.predicted_time == 0.0

    def test_broadcast(self, solo):
        outcome = run_broadcast(solo, 1000)
        assert outcome.values[0][0] == 1000

    def test_scatter(self, solo):
        outcome = run_scatter(solo, 1000)
        assert outcome.values[0][0] == 1000

    def test_reduce(self, solo):
        outcome = run_reduce(solo, 100)
        assert outcome.values[0][0] == 100

    def test_scan(self, solo):
        outcome = run_scan(solo, 100)
        assert outcome.values[0][0] == 100

    def test_alltoall(self, solo):
        outcome = run_alltoall(solo, 1000)
        assert outcome.values[0][0] == 1000

    @pytest.mark.parametrize("strategy", ["direct", "hierarchical"])
    def test_allgather(self, solo, strategy):
        outcome = run_allgather(solo, 1000, strategy=strategy)
        assert outcome.values[0][0] == 1000

    @pytest.mark.parametrize("strategy", ["direct", "tree"])
    def test_allreduce(self, solo, strategy):
        outcome = run_allreduce(solo, 100, strategy=strategy)
        assert outcome.values[0][0] == 100


class TestEmptyProblems:
    def test_gather_zero_items(self, pair):
        outcome = run_gather(pair, 0)
        assert sum(v[0] for v in outcome.values.values()) == 0

    def test_broadcast_zero_items(self, pair):
        outcome = run_broadcast(pair, 0)
        # Nothing to send; nobody should end with phantom data.
        assert all(v[0] == 0 for v in outcome.values.values())

    def test_scatter_zero_items(self, pair):
        outcome = run_scatter(pair, 0)
        assert sum(v[0] for v in outcome.values.values()) == 0

    def test_alltoall_zero_items(self, pair):
        outcome = run_alltoall(pair, 0)
        assert sum(v[0] for v in outcome.values.values()) == 0


class TestTinyProblems:
    def test_gather_one_item(self, pair):
        outcome = run_gather(pair, 1)
        assert sum(v[0] for v in outcome.values.values()) == 1

    def test_broadcast_one_item(self, pair):
        outcome = run_broadcast(pair, 1)
        assert {v[0] for v in outcome.values.values()} == {1}

    def test_scan_width_one(self, pair):
        outcome = run_scan(pair, 1)
        assert all(v[0] == 1 for v in outcome.values.values())

    def test_reduce_width_one(self, pair):
        outcome = run_reduce(pair, 1)
        holders = [v for v in outcome.values.values() if v[0] > 0]
        assert len(holders) == 1

    def test_fewer_items_than_machines(self):
        topo = ucf_testbed(8)
        outcome = run_gather(topo, 3)
        assert sum(v[0] for v in outcome.values.values()) == 3

    def test_broadcast_fewer_items_than_machines(self):
        topo = ucf_testbed(8)
        outcome = run_broadcast(topo, 3, phases="two")
        assert {v[0] for v in outcome.values.values()} == {3}
