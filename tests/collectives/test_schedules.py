"""Unit tests for repro.collectives.schedules."""

import pytest

from repro.collectives import RootPolicy, WorkloadPolicy, resolve_root, split_counts
from repro.collectives.schedules import (
    SchedulePolicy,
    effective_coordinator,
    level_participants,
    resolve_plan,
)
from repro.errors import CollectiveError
from repro.hbsplib import HbspRuntime


class TestResolveRoot:
    def test_default_is_fastest(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        assert resolve_root(runtime, None) == runtime.fastest_pid

    def test_policies(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        assert resolve_root(runtime, RootPolicy.FASTEST) == runtime.fastest_pid
        assert resolve_root(runtime, RootPolicy.SLOWEST) == runtime.slowest_pid

    def test_explicit_pid(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        assert resolve_root(runtime, 2) == 2

    def test_out_of_range_rejected(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        with pytest.raises(CollectiveError):
            resolve_root(runtime, 99)

    def test_bool_rejected(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        with pytest.raises(CollectiveError):
            resolve_root(runtime, True)


class TestSplitCounts:
    def test_equal_policy(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        counts = split_counts(runtime, 100, WorkloadPolicy.EQUAL)
        assert sum(counts) == 100
        assert max(counts) - min(counts) <= 1

    def test_balanced_policy(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        counts = split_counts(runtime, 10_000, WorkloadPolicy.BALANCED)
        assert sum(counts) == 10_000
        assert counts[runtime.fastest_pid] == max(counts)
        assert counts[runtime.slowest_pid] == min(counts)

    def test_explicit_counts_validated(self, testbed_small):
        runtime = HbspRuntime(testbed_small)
        assert split_counts(runtime, 10, [1, 2, 3, 4]) == [1, 2, 3, 4]
        with pytest.raises(CollectiveError, match="sum"):
            split_counts(runtime, 11, [1, 2, 3, 4])
        with pytest.raises(CollectiveError, match="entries"):
            split_counts(runtime, 10, [10])
        with pytest.raises(CollectiveError, match="non-negative"):
            split_counts(runtime, 10, [11, 2, -3, 0])


class TestResolvePlan:
    @pytest.fixture
    def tuning_cache(self, tmp_path, monkeypatch):
        """Point the process-wide decision cache at a throwaway dir."""
        from repro.tuning.cache import DecisionCache
        import repro.tuning.tuner as tuner

        cache = DecisionCache(tmp_path)
        monkeypatch.setattr(tuner, "_process_cache", cache)
        return cache

    def test_default_spellings_return_none(self, testbed_small):
        for spelling in (None, SchedulePolicy.DEFAULT, "default"):
            assert resolve_plan(testbed_small, "gather", 100, spelling) is None

    def test_unknown_spelling_rejected(self, testbed_small):
        with pytest.raises(ValueError):
            resolve_plan(testbed_small, "gather", 100, "bogus")

    def test_tuned_rejected_on_untunable_ops(self, testbed_small):
        with pytest.raises(CollectiveError, match="gather/broadcast"):
            resolve_plan(testbed_small, "scatter", 100, SchedulePolicy.TUNED)

    def test_tuned_returns_the_cached_winner(self, testbed_small, tuning_cache):
        from repro.tuning.tuner import tune

        plan = resolve_plan(
            testbed_small, "gather", 2000, SchedulePolicy.TUNED
        )
        decision = tune(testbed_small, "gather", 2000, cache=tuning_cache)
        assert plan == decision.plan
        assert len(tuning_cache) == 1  # resolve_plan populated it; tune hit

    def test_tuned_accepts_the_string_spelling(self, testbed_small, tuning_cache):
        plan = resolve_plan(testbed_small, "broadcast", 2000, "tuned")
        assert plan.op == "broadcast"
        assert plan.k == 1


class TestCoordinatorOverride:
    def _contexts(self, topology):
        """Run a trivial program to materialise contexts."""
        runtime = HbspRuntime(topology)
        captured = {}

        def prog(ctx):
            coord_default = effective_coordinator(ctx, 1, root=runtime.fastest_pid)
            coord_override = effective_coordinator(ctx, 1, root=ctx.pid)
            participants = level_participants(
                ctx, ctx.runtime.tree.k, runtime.fastest_pid
            )
            captured[ctx.pid] = (coord_default, coord_override, participants)
            yield from ctx.sync()

        runtime.run(prog)
        return runtime, captured

    def test_root_in_cluster_takes_over(self, testbed_small):
        runtime, captured = self._contexts(testbed_small)
        for pid, (_default, override, _parts) in captured.items():
            # In a 1-level machine every pid shares the root's cluster,
            # so overriding with pid itself makes pid the coordinator.
            assert override == pid

    def test_default_coordinator_when_root_elsewhere(self, fig1_machine):
        runtime, captured = self._contexts(fig1_machine)
        fastest = runtime.fastest_pid
        for pid, (default, _override, _parts) in captured.items():
            members = runtime.cluster_members(pid, 1)
            if fastest in members:
                assert default == fastest
            else:
                assert default == runtime.coordinator_pid(pid, 1)

    def test_participants_cover_child_clusters(self, fig1_machine):
        runtime, captured = self._contexts(fig1_machine)
        _d, _o, participants = captured[0]
        # One participant per level-1 cluster (SMP, SGI, LAN).
        assert len(participants) == 3
        # Each participant is a member of a distinct level-1 cluster.
        clusters = [
            frozenset(runtime.cluster_members(p, 1)) for p in participants
        ]
        assert len(set(clusters)) == 3
