"""Tests for the HBSP^k one-to-all broadcast."""

import pytest

from repro.collectives import RootPolicy, run_broadcast

N = 25_600


def assert_everyone_has_everything(outcome, n=N):
    sizes = {v[0] for v in outcome.values.values()}
    checksums = {v[1] for v in outcome.values.values()}
    assert sizes == {n}
    assert len(checksums) == 1


class TestCorrectness:
    @pytest.mark.parametrize("phases", ["one", "two"])
    def test_hbsp1(self, testbed_small, phases):
        outcome = run_broadcast(testbed_small, N, phases=phases)
        assert_everyone_has_everything(outcome)

    @pytest.mark.parametrize(
        "phases",
        ["one", "two", {2: "one", 1: "two"}, {2: "two", 1: "one"}],
        ids=["all-one", "all-two", "one-then-two", "two-then-one"],
    )
    def test_hbsp2_phase_combinations(self, fig1_machine, phases):
        outcome = run_broadcast(fig1_machine, N, phases=phases)
        assert_everyone_has_everything(outcome)

    def test_hbsp3(self, grid):
        outcome = run_broadcast(grid, N)
        assert_everyone_has_everything(outcome)

    def test_any_root(self, fig1_machine):
        for root in (0, 4, 8):
            outcome = run_broadcast(fig1_machine, N, root=root)
            assert_everyone_has_everything(outcome)

    def test_balanced_shares(self, testbed_small):
        outcome = run_broadcast(testbed_small, N, balanced_shares=True)
        assert_everyone_has_everything(outcome)

    def test_data_identical_across_roots(self, testbed_small):
        a = run_broadcast(testbed_small, N, root=0, seed=3)
        b = run_broadcast(testbed_small, N, root=0, seed=3)
        assert a.values == b.values

    def test_superstep_counts(self, testbed_small, fig1_machine):
        one = run_broadcast(testbed_small, N, phases="one")
        two = run_broadcast(testbed_small, N, phases="two")
        assert one.supersteps == 1
        assert two.supersteps == 2
        mixed = run_broadcast(fig1_machine, N, phases={2: "one", 1: "two"})
        assert mixed.supersteps == 3  # 1 at level 2 + 2 at level 1

    def test_tiny_broadcast(self, testbed_small):
        outcome = run_broadcast(testbed_small, 3, phases="two")
        assert_everyone_has_everything(outcome, n=3)


class TestPaperFindings:
    def test_two_phase_beats_one_phase_at_scale(self, testbed):
        one = run_broadcast(testbed, N, phases="one")
        two = run_broadcast(testbed, N, phases="two")
        assert two.time < one.time

    def test_root_choice_nearly_irrelevant(self, testbed):
        """Fig. 4(a): negligible improvement from the fast root."""
        slow = run_broadcast(testbed, N, root=RootPolicy.SLOWEST)
        fast = run_broadcast(testbed, N, root=RootPolicy.FASTEST)
        factor = slow.time / fast.time
        assert 0.9 < factor < 1.4

    def test_balancing_nearly_irrelevant(self, testbed):
        """Fig. 4(b): no benefit to balanced first-phase shares."""
        equal = run_broadcast(testbed, N, balanced_shares=False)
        balanced = run_broadcast(testbed, N, balanced_shares=True)
        factor = equal.time / balanced.time
        assert 0.8 < factor < 1.25

    def test_gather_exploits_heterogeneity_more_than_broadcast(self, testbed):
        """The paper's core contrast between Figures 3(a) and 4(a)."""
        from repro.collectives import WorkloadPolicy, run_gather

        g_slow = run_gather(testbed, N, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL)
        g_fast = run_gather(testbed, N, root=RootPolicy.FASTEST, workload=WorkloadPolicy.EQUAL)
        b_slow = run_broadcast(testbed, N, root=RootPolicy.SLOWEST)
        b_fast = run_broadcast(testbed, N, root=RootPolicy.FASTEST)
        assert g_slow.time / g_fast.time > b_slow.time / b_fast.time


class TestPrediction:
    def test_prediction_ballpark(self, testbed_small):
        outcome = run_broadcast(testbed_small, 10 * N)
        assert outcome.predicted_time <= outcome.time <= 5 * outcome.predicted_time

    def test_predicted_ordering_matches_simulated(self, testbed):
        one = run_broadcast(testbed, N, phases="one")
        two = run_broadcast(testbed, N, phases="two")
        assert (one.predicted_time > two.predicted_time) == (one.time > two.time)
