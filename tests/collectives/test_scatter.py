"""Tests for the HBSP^k scatter collective."""

import numpy as np
import pytest

from repro.collectives import RootPolicy, WorkloadPolicy, run_scatter
from repro.collectives.base import make_items

N = 25_600


class TestCorrectness:
    def test_counts_respected(self, testbed_small):
        outcome = run_scatter(testbed_small, N)
        counts = outcome.runtime.partition(N, balanced=True)
        for pid, (size, _checksum) in outcome.values.items():
            assert size == counts[pid]

    def test_total_conserved(self, testbed_small):
        outcome = run_scatter(testbed_small, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_chunks_are_the_right_slices(self, testbed_small):
        outcome = run_scatter(testbed_small, N, seed=7)
        counts = outcome.runtime.partition(N, balanced=True)
        root = outcome.runtime.fastest_pid
        everything = make_items(7, root, N).astype(np.int64)
        offsets = np.cumsum([0] + counts)
        for pid, (size, checksum) in outcome.values.items():
            expected = int(everything[offsets[pid] : offsets[pid + 1]].sum())
            assert checksum == expected

    def test_hbsp2(self, fig1_machine):
        outcome = run_scatter(fig1_machine, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_hbsp3(self, grid):
        outcome = run_scatter(grid, N)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_slow_root(self, fig1_machine):
        outcome = run_scatter(fig1_machine, N, root=RootPolicy.SLOWEST)
        assert sum(v[0] for v in outcome.values.values()) == N

    def test_equal_workload(self, testbed_small):
        outcome = run_scatter(testbed_small, N, workload=WorkloadPolicy.EQUAL)
        sizes = [v[0] for v in outcome.values.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_root_keeps_own_chunk_without_sending(self, testbed_small):
        outcome = run_scatter(testbed_small, N, trace=True)
        root = outcome.runtime.fastest_pid
        root_name = f"pid{root}@{outcome.runtime.topology.machines[root].name}"
        # The root packs messages for others but drains nothing.
        drains = outcome.result.trace.by_actor("drain")
        assert root_name not in drains


class TestTiming:
    def test_prediction_ballpark(self, testbed_small):
        outcome = run_scatter(testbed_small, 10 * N)
        assert outcome.predicted_time <= outcome.time <= 4 * outcome.predicted_time

    def test_scatter_cost_similar_to_gather(self, testbed_small):
        """The scatter is the gather reversed; same h-relations."""
        from repro.collectives import run_gather

        scatter = run_scatter(testbed_small, N)
        gather = run_gather(testbed_small, N)
        assert scatter.predicted_time == pytest.approx(
            gather.predicted_time, rel=0.05
        )

    def test_deterministic(self, fig1_machine):
        assert (
            run_scatter(fig1_machine, N, seed=2).time
            == run_scatter(fig1_machine, N, seed=2).time
        )
