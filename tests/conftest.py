"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterTopology,
    flat_cluster,
    grid_three_level,
    smp_sgi_lan,
    ucf_testbed,
)
from repro.model import HBSPParams, calibrate


@pytest.fixture
def testbed() -> ClusterTopology:
    """The full ten-workstation HBSP^1 testbed."""
    return ucf_testbed(10)


@pytest.fixture
def testbed_small() -> ClusterTopology:
    """A four-workstation HBSP^1 testbed (fast tests)."""
    return ucf_testbed(4)


@pytest.fixture
def fig1_machine() -> ClusterTopology:
    """The paper's Figure-1 HBSP^2 machine (SMP + SGI + LAN)."""
    return smp_sgi_lan()


@pytest.fixture
def grid() -> ClusterTopology:
    """A small HBSP^3 grid."""
    return grid_three_level(sites=2, lans_per_site=2, p_per_lan=2)


@pytest.fixture
def homogeneous() -> ClusterTopology:
    """A homogeneous (pure BSP) cluster of six machines."""
    return flat_cluster(6, slowdown=1.0, nic_slowdown=1.0)


@pytest.fixture
def testbed_params(testbed) -> HBSPParams:
    """Calibrated parameters of the full testbed."""
    return calibrate(testbed)


@pytest.fixture
def fig1_params(fig1_machine) -> HBSPParams:
    """Calibrated parameters of the Figure-1 machine."""
    return calibrate(fig1_machine)
