"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    BYTES_PER_INT,
    KIB,
    MIB,
    bytes_to_items,
    format_bytes,
    format_time,
    items_to_bytes,
    kb,
)


class TestConstants:
    def test_kib(self):
        assert KIB == 1024

    def test_mib(self):
        assert MIB == 1024 * 1024

    def test_items_are_c_ints(self):
        assert BYTES_PER_INT == 4


class TestConversions:
    def test_kb(self):
        assert kb(100) == 102400

    def test_kb_fractional(self):
        assert kb(0.5) == 512

    def test_items_to_bytes(self):
        assert items_to_bytes(25600) == 102400

    def test_bytes_to_items(self):
        assert bytes_to_items(102400) == 25600

    def test_roundtrip(self):
        for items in (0, 1, 25600, 256000):
            assert bytes_to_items(items_to_bytes(items)) == items

    def test_bytes_to_items_floors(self):
        assert bytes_to_items(7) == 1


class TestFormatting:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(512, "512 B"), (102400, "100.0 KB"), (1024 * 1024 * 3 // 2, "1.5 MB")],
    )
    def test_format_bytes(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0 s"),
            (5e-6, "5.0 us"),
            (2.5e-3, "2.50 ms"),
            (1.5, "1.500 s"),
        ],
    )
    def test_format_time(self, seconds, expected):
        assert format_time(seconds) == expected
