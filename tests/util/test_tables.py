"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import AsciiTable, format_series


class TestAsciiTable:
    def test_renders_title_and_headers(self):
        table = AsciiTable("demo", ["p", "factor"])
        out = table.render()
        assert out.startswith("demo")
        assert "| p" in out or "|  p" in out.replace("p |", "p|") or "p" in out

    def test_rows_align(self):
        table = AsciiTable("t", ["a", "b"])
        table.add_row([1, 2.0])
        table.add_row([100, 200.5])
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every rendered line has equal width

    def test_float_formatting(self):
        table = AsciiTable("t", ["x"])
        table.add_row([1.23456])
        assert "1.235" in table.render()

    def test_bool_not_formatted_as_float(self):
        table = AsciiTable("t", ["x"])
        table.add_row([True])
        assert "True" in table.render()

    def test_wrong_cell_count_raises(self):
        table = AsciiTable("t", ["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            table.add_row([1])

    def test_str_equals_render(self):
        table = AsciiTable("t", ["a"])
        table.add_row([1])
        assert str(table) == table.render()


class TestFormatSeries:
    def test_shared_x_axis(self):
        out = format_series(
            "fig", "p", {"100 KB": {2: 1.0, 4: 1.2}, "500 KB": {2: 1.1, 4: 1.3}}
        )
        assert "fig" in out
        assert "100 KB" in out and "500 KB" in out
        assert "1.200" in out and "1.300" in out

    def test_missing_point_renders_nan(self):
        out = format_series("fig", "p", {"a": {2: 1.0}, "b": {4: 2.0}})
        assert "nan" in out

    def test_x_order_is_first_seen(self):
        out = format_series("fig", "p", {"a": {4: 1.0, 2: 2.0}})
        lines = out.splitlines()
        row4 = next(i for i, l in enumerate(lines) if "| 4 |" in l.replace("  ", " "))
        row2 = next(i for i, l in enumerate(lines) if "| 2 |" in l.replace("  ", " "))
        assert row4 < row2
