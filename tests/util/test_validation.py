"""Unit tests for repro.util.validation."""

import math

import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    check_finite,
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)


class TestCheckFinite:
    def test_returns_float(self):
        assert check_finite("x", 3) == 3.0
        assert isinstance(check_finite("x", 3), float)

    def test_accepts_negative(self):
        assert check_finite("x", -2.5) == -2.5

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError, match="finite"):
            check_finite("x", bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="real number"):
            check_finite("x", "hello")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="myparam"):
            check_finite("myparam", float("nan"))


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    @pytest.mark.parametrize("bad", [0, -1, -0.0001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="> 0"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match=">= 0"):
            check_non_negative("x", -1e-12)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("x", 5) == 5

    def test_accepts_integral_float(self):
        assert check_positive_int("x", 4.0) == 4

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int("x", 4.5)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match=">= 1"):
            check_positive_int("x", 0)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int("x", True)


class TestCheckIndex:
    def test_accepts_in_range(self):
        assert check_index("i", 0, 3) == 0
        assert check_index("i", 2, 3) == 2

    @pytest.mark.parametrize("bad", [-1, 3, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValidationError):
            check_index("i", bad, 3)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_index("i", True, 3)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValidationError):
            check_fraction("f", bad)


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector("c", [0.25, 0.25, 0.5])
        assert out == (0.25, 0.25, 0.5)

    def test_accepts_fsum_rounding(self):
        values = [0.1] * 10
        assert math.isclose(sum(check_probability_vector("c", values)), 1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probability_vector("c", [0.5, 0.6])

    def test_rejects_negative_entry(self):
        with pytest.raises(ValidationError):
            check_probability_vector("c", [1.5, -0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_probability_vector("c", [])
