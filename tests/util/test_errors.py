"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_validation_is_value_error(self):
        """Idiomatic call sites catching ValueError keep working."""
        assert issubclass(errors.ValidationError, ValueError)
        assert issubclass(errors.PartitionError, ValueError)

    def test_task_not_found_is_key_error(self):
        assert issubclass(errors.TaskNotFound, KeyError)

    def test_subsystem_groups(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.RoutingError, errors.TopologyError)
        assert issubclass(errors.MailboxClosed, errors.PvmError)
        assert issubclass(errors.SuperstepError, errors.HbspError)
        assert issubclass(errors.CalibrationError, errors.ModelError)

    def test_deadlock_carries_blocked_list(self):
        error = errors.DeadlockError("stuck", blocked=("a", "b"))
        assert error.blocked == ("a", "b")
        assert errors.DeadlockError("stuck").blocked == ()

    def test_single_except_catches_library_failures(self):
        with pytest.raises(errors.ReproError):
            raise errors.CollectiveError("bad")
        with pytest.raises(errors.ReproError):
            raise errors.ExperimentError("bad")
