"""Tests for the ASCII line-plot renderer."""

import pytest

from repro.util import ascii_plot


def simple_series():
    return {
        "a": {2: 1.0, 4: 2.0, 6: 3.0},
        "b": {2: 3.0, 4: 2.0, 6: 1.0},
    }


class TestAsciiPlot:
    def test_empty_series(self):
        assert "no data" in ascii_plot({})
        assert "no data" in ascii_plot({"a": {}})

    def test_title_and_legend(self):
        out = ascii_plot(simple_series(), title="demo")
        assert out.startswith("demo")
        assert "*=a" in out
        assert "o=b" in out

    def test_markers_present(self):
        out = ascii_plot(simple_series())
        assert out.count("*") >= 3  # three points for series a
        assert out.count("o") >= 3

    def test_axis_labels(self):
        out = ascii_plot(simple_series(), x_name="p", y_name="factor")
        assert "p" in out
        assert "factor" in out

    def test_x_ticks_rendered(self):
        out = ascii_plot(simple_series())
        for tick in ("2", "4", "6"):
            assert tick in out

    def test_y_range_labels(self):
        out = ascii_plot(simple_series())
        # Headroom-padded bounds around [1, 3].
        assert "3." in out
        assert "0.9" in out

    def test_rows_match_height(self):
        out = ascii_plot(simple_series(), height=10, title="")
        body_rows = [line for line in out.splitlines() if "|" in line]
        assert len(body_rows) == 10

    def test_width_respected(self):
        out = ascii_plot(simple_series(), width=30)
        body_row = next(line for line in out.splitlines() if "|" in line)
        inner = body_row.split("|")[1]
        assert len(inner) == 30

    def test_monotone_series_monotone_rows(self):
        """An increasing series' markers must appear at decreasing row
        indices (up the plot)."""
        out = ascii_plot({"up": {1: 1.0, 2: 2.0, 3: 3.0}}, height=12, title="")
        rows_with_marker = [
            i for i, line in enumerate(out.splitlines()) if "*" in line
        ]
        assert rows_with_marker == sorted(rows_with_marker)
        # Leftmost marker is in a later (lower) row than the rightmost.
        lines = out.splitlines()
        first_cols = [line.find("*") for line in lines if "*" in line]
        assert first_cols[0] > first_cols[-1]

    def test_flat_series_handled(self):
        out = ascii_plot({"flat": {1: 2.0, 2: 2.0}})
        assert "*" in out

    def test_single_point(self):
        out = ascii_plot({"dot": {5: 1.5}})
        assert "*" in out

    def test_nan_points_skipped(self):
        out = ascii_plot({"a": {1: 1.0, 2: float("nan"), 3: 2.0}})
        assert "*" in out


class TestReportPlotIntegration:
    def test_report_render_plot(self):
        from repro.experiments import ExperimentReport

        report = ExperimentReport(
            experiment_id="demo",
            title="Demo",
            x_name="p",
            series={"s": {2: 1.0, 4: 1.5}},
            notes=["a note"],
        )
        out = report.render(plot=True)
        assert "[demo]" in out
        assert "|" in out  # plot frame
        assert "a note" in out
