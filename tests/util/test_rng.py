"""Unit tests for repro.util.rng."""

import numpy as np

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_path_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ — the separator matters.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_accepts_ints_in_path(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, "1", "2")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64


class TestRngStream:
    def test_same_path_same_draws(self):
        a = RngStream(7, "workload").uniform_ints(10)
        b = RngStream(7, "workload").uniform_ints(10)
        np.testing.assert_array_equal(a, b)

    def test_different_path_different_draws(self):
        a = RngStream(7, "workload").uniform_ints(100)
        b = RngStream(7, "noise").uniform_ints(100)
        assert not np.array_equal(a, b)

    def test_child_stream_independent(self):
        parent = RngStream(7)
        child1 = parent.child("x")
        child2 = parent.child("y")
        assert child1.seed != child2.seed
        # Children derive from the parent's seed, not its state: drawing
        # from the parent does not perturb children.
        parent.uniform_ints(50)
        child1b = RngStream(7).child("x")
        np.testing.assert_array_equal(
            child1.uniform_ints(5), child1b.uniform_ints(5)
        )

    def test_uniform_ints_bounds(self):
        values = RngStream(0).uniform_ints(1000, low=5, high=10)
        assert values.min() >= 5
        assert values.max() < 10

    def test_lognormal_factor_sigma_zero(self):
        assert RngStream(0).lognormal_factor(0.0) == 1.0

    def test_lognormal_factor_positive(self):
        stream = RngStream(0)
        assert all(stream.lognormal_factor(0.5) > 0 for _ in range(100))

    def test_lognormal_median_near_one(self):
        stream = RngStream(0)
        draws = [stream.lognormal_factor(0.3) for _ in range(2000)]
        assert 0.9 < float(np.median(draws)) < 1.1

    def test_shuffled_preserves_multiset(self):
        items = list(range(20))
        out = RngStream(3).shuffled(items)
        assert sorted(out) == items
        assert items == list(range(20))  # input untouched
