"""Unit tests for repro.bytemark.ranking."""

import pytest

from repro.bytemark import fractions_from_scores, partition_items, ranking_from_scores
from repro.errors import PartitionError, ValidationError


class TestRanking:
    def test_fastest_first(self):
        ranking = ranking_from_scores({"slow": 1.0, "fast": 10.0, "mid": 5.0})
        assert ranking == ["fast", "mid", "slow"]

    def test_ties_broken_by_name(self):
        ranking = ranking_from_scores({"b": 1.0, "a": 1.0})
        assert ranking == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ranking_from_scores({})

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_scores_rejected(self, bad):
        with pytest.raises(ValidationError):
            ranking_from_scores({"x": bad})


class TestFractions:
    def test_proportional(self):
        fractions = fractions_from_scores({"a": 3.0, "b": 1.0})
        assert fractions["a"] == pytest.approx(0.75)
        assert fractions["b"] == pytest.approx(0.25)

    def test_sum_to_one_within_ulp(self):
        scores = {f"m{i}": 1.0 + 0.1 * i for i in range(17)}
        fractions = fractions_from_scores(scores)
        import math

        assert abs(math.fsum(fractions.values()) - 1.0) < 1e-12

    def test_faster_gets_more(self):
        fractions = fractions_from_scores({"fast": 10.0, "slow": 2.5})
        assert fractions["fast"] > fractions["slow"]
        assert fractions["fast"] / fractions["slow"] == pytest.approx(4.0)


class TestPartitionItems:
    def test_conserves_n(self):
        part = partition_items(1000, {"a": 0.5, "b": 0.3, "c": 0.2})
        assert sum(part.values()) == 1000

    def test_proportionality_within_one(self):
        fractions = {"a": 0.61803, "b": 0.38197}
        part = partition_items(999, fractions)
        for name, fraction in fractions.items():
            assert abs(part[name] - 999 * fraction) < 1.0

    def test_deterministic(self):
        fractions = {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3}
        assert partition_items(100, fractions) == partition_items(100, fractions)

    def test_zero_items(self):
        part = partition_items(0, {"a": 0.5, "b": 0.5})
        assert part == {"a": 0, "b": 0}

    def test_n_smaller_than_machines(self):
        part = partition_items(2, {"a": 0.4, "b": 0.35, "c": 0.25})
        assert sum(part.values()) == 2
        assert all(v >= 0 for v in part.values())

    def test_bad_sum_rejected(self):
        with pytest.raises(PartitionError, match="sum to 1"):
            partition_items(10, {"a": 0.5, "b": 0.4})

    def test_negative_fraction_rejected(self):
        with pytest.raises(PartitionError):
            partition_items(10, {"a": 1.5, "b": -0.5})

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            partition_items(10, {})

    def test_single_machine_gets_all(self):
        assert partition_items(42, {"only": 1.0}) == {"only": 42}

    def test_ties_resolved_by_name(self):
        # 3 items over 2 equal halves: the extra goes to 'a'.
        part = partition_items(3, {"a": 0.5, "b": 0.5})
        assert part == {"a": 2, "b": 1}
