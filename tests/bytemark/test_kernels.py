"""Unit tests for repro.bytemark.kernels — every kernel really runs."""

import numpy as np
import pytest

from repro.bytemark import KERNELS
from repro.bytemark.kernels import (
    assignment,
    bitfield,
    fourier,
    fp_kernel,
    huffman,
    idea_cipher,
    lu_decomposition,
    neural_net,
    numeric_sort,
    string_sort,
)
from repro.errors import ValidationError


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSuiteInventory:
    def test_ten_kernels(self):
        assert len(KERNELS) == 10

    def test_unique_names(self):
        names = [k.name for k in KERNELS]
        assert len(set(names)) == len(names)

    def test_categories(self):
        assert {k.category for k in KERNELS} == {"integer", "float"}

    def test_positive_work(self):
        assert all(k.work > 0 for k in KERNELS)

    def test_both_categories_populated(self):
        integers = [k for k in KERNELS if k.category == "integer"]
        floats = [k for k in KERNELS if k.category == "float"]
        assert len(integers) >= 3 and len(floats) >= 3


class TestDeterminism:
    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_same_seed_same_checksum(self, kernel):
        assert kernel.run(rng(7), 1) == kernel.run(rng(7), 1)

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_returns_finite_float(self, kernel):
        value = kernel.run(rng(0), 1)
        assert isinstance(value, float)
        assert np.isfinite(value)

    def test_scale_validation(self):
        with pytest.raises(ValidationError):
            KERNELS[0].run(rng(0), 0)


class TestKernelSemantics:
    def test_numeric_sort_checksum_stable(self):
        assert numeric_sort(rng(1), 1) == numeric_sort(rng(1), 1)

    def test_string_sort_positive(self):
        assert string_sort(rng(0), 1) > 0

    def test_bitfield_bounded(self):
        total = bitfield(rng(0), 1)
        assert 0 <= total <= 8192

    def test_huffman_beats_fixed_width(self):
        """The Huffman encoding of 64 symbols must beat 6 bits/symbol
        on skewed data and never beat the entropy bound badly."""
        encoded_bits = huffman(rng(0), 1)
        assert 0 < encoded_bits <= 1024 * 8  # no worse than 8 bits/symbol

    def test_idea_in_range(self):
        assert 0 <= idea_cipher(rng(0), 1) < 2**31

    def test_assignment_at_most_greedy(self):
        """The optimal assignment can't cost more than a greedy one."""
        generator = rng(5)
        costs = generator.integers(0, 1000, size=(64, 64)).astype(float)
        from scipy.optimize import linear_sum_assignment

        rows, cols = linear_sum_assignment(costs)
        optimal = costs[rows, cols].sum()
        taken = set()
        greedy = 0.0
        for i in range(64):
            j = min(
                (j for j in range(64) if j not in taken),
                key=lambda j: costs[i, j],
            )
            taken.add(j)
            greedy += costs[i, j]
        assert optimal <= greedy + 1e-9

    def test_fp_kernel_positive(self):
        assert fp_kernel(rng(0), 1) > 0

    def test_fourier_energy_grows_with_coefficients(self):
        assert fourier(rng(0), 2) >= fourier(rng(0), 1)

    def test_neural_net_loss_decreases(self):
        """More epochs must not increase the training loss (much)."""
        short = neural_net(rng(3), 1)
        long = neural_net(rng(3), 4)
        assert long <= short * 1.05

    def test_lu_residual_tiny(self):
        assert lu_decomposition(rng(0), 2) < 1e-6
