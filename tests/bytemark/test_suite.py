"""Unit tests for repro.bytemark.suite."""

import math

import pytest

from repro.bytemark import BytemarkResult, measure_host, simulate_scores, true_scores
from repro.bytemark.kernels import KERNELS
from repro.cluster import ucf_testbed
from repro.errors import ValidationError


class TestBytemarkResult:
    def test_aggregates_geometric_mean(self):
        scores = {k.name: 100.0 for k in KERNELS}
        result = BytemarkResult.from_scores(scores)
        assert result.index == pytest.approx(100.0)
        assert result.integer_index == pytest.approx(100.0)
        assert result.float_index == pytest.approx(100.0)

    def test_geometric_not_arithmetic(self):
        integer_kernels = [k for k in KERNELS if k.category == "integer"]
        scores = {k.name: 1.0 for k in integer_kernels}
        scores[integer_kernels[0].name] = 100.0
        result = BytemarkResult.from_scores(scores)
        expected = math.exp(math.log(100.0) / len(integer_kernels))
        assert result.integer_index == pytest.approx(expected)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            BytemarkResult.from_scores({})

    def test_partial_suite_ok(self):
        result = BytemarkResult.from_scores({KERNELS[0].name: 10.0})
        assert result.index == pytest.approx(10.0)


class TestMeasureHost:
    def test_runs_and_reports_all_kernels(self):
        result = measure_host(scale=1, seed=0, kernels=KERNELS[:3])
        assert len(result.scores) == 3
        assert all(score > 0 for score in result.scores.values())

    def test_index_positive(self):
        result = measure_host(scale=1, seed=0, kernels=KERNELS[:2])
        assert result.index > 0


class TestSimulateScores:
    def test_zero_noise_is_truth(self):
        topo = ucf_testbed(5)
        assert simulate_scores(topo, noise_sigma=0.0) == true_scores(topo)

    def test_true_scores_are_cpu_rates(self):
        topo = ucf_testbed(4)
        scores = true_scores(topo)
        for machine in topo.machines:
            assert scores[machine.name] == machine.cpu_rate

    def test_noise_deterministic_per_seed(self):
        topo = ucf_testbed(6)
        a = simulate_scores(topo, noise_sigma=0.2, seed=1)
        b = simulate_scores(topo, noise_sigma=0.2, seed=1)
        assert a == b

    def test_different_seed_different_noise(self):
        topo = ucf_testbed(6)
        a = simulate_scores(topo, noise_sigma=0.2, seed=1)
        b = simulate_scores(topo, noise_sigma=0.2, seed=2)
        assert a != b

    def test_score_independent_of_topology_membership(self):
        """A machine's simulated score doesn't depend on which other
        machines were benchmarked with it — like real hosts."""
        big = simulate_scores(ucf_testbed(10), noise_sigma=0.3, seed=9)
        small = simulate_scores(ucf_testbed(3), noise_sigma=0.3, seed=9)
        for name in small:
            assert small[name] == big[name]

    def test_noise_scales_with_sigma(self):
        topo = ucf_testbed(10)
        mild = simulate_scores(topo, noise_sigma=0.01, seed=3)
        wild = simulate_scores(topo, noise_sigma=0.8, seed=3)
        truth = true_scores(topo)
        mild_err = max(abs(mild[n] / truth[n] - 1) for n in truth)
        wild_err = max(abs(wild[n] / truth[n] - 1) for n in truth)
        assert mild_err < wild_err

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            simulate_scores(ucf_testbed(2), noise_sigma=-0.1)

    def test_all_scores_positive(self):
        scores = simulate_scores(ucf_testbed(10), noise_sigma=1.0, seed=0)
        assert all(score > 0 for score in scores.values())
