"""10^4-leaf scale runs (``-m scale``; excluded from the tier-1 run).

One macro-engine run per collective on the 10^4-leaf fat tree — the
ISSUE's headline scale.  These take seconds each, so the default test
run skips them; the CI bench job runs ``pytest -m scale`` explicitly.
Numerical equivalence at this scale is pinned by ``BENCH_scale.json``
(the 10^3 dual-path entries) and the macro-equivalence properties.
"""

import pytest

from repro.cluster.discover.generators import fat_tree
from repro.collectives import run_broadcast, run_gather

pytestmark = pytest.mark.scale

LEAVES_10K = dict(pods=25, racks_per_pod=25, hosts_per_rack=16)


@pytest.mark.parametrize("runner", [run_broadcast, run_gather])
def test_ten_thousand_leaves_macro(runner):
    topology = fat_tree(seed=0, **LEAVES_10K)
    outcome = runner(topology, 50_000, seed=1, macro=True)
    assert outcome.runtime.macro is not None
    assert outcome.runtime.nprocs == 10_000
    assert outcome.time > 0.0
    assert outcome.supersteps >= 2
    # Every leaf ran the program to completion.
    assert len(outcome.values) == 10_000
