"""Unit tests for repro.sim.resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Resource, Store


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_capacity_validation(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_grant_when_free(self, engine):
        resource = Resource(engine)
        request = resource.request()
        assert request.triggered
        assert resource.in_use == 1

    def test_release_without_hold_raises(self, engine):
        resource = Resource(engine)
        with pytest.raises(SimulationError, match="idle"):
            resource.release()

    def test_serialises_unit_capacity(self, engine):
        resource = Resource(engine, capacity=1)
        finish = []

        def worker(i):
            yield from resource.occupy(1.0)
            finish.append((i, engine.now))

        for i in range(3):
            engine.process(worker(i))
        engine.run()
        assert finish == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_parallel_capacity(self, engine):
        resource = Resource(engine, capacity=3)
        finish = []

        def worker(i):
            yield from resource.occupy(1.0)
            finish.append(engine.now)

        for i in range(3):
            engine.process(worker(i))
        engine.run()
        assert finish == [1.0, 1.0, 1.0]

    def test_fifo_grant_order(self, engine):
        resource = Resource(engine)
        order = []

        def worker(i):
            yield resource.request()
            order.append(i)
            yield engine.timeout(1.0)
            resource.release()

        for i in range(4):
            engine.process(worker(i))
        engine.run()
        assert order == [0, 1, 2, 3]

    def test_queue_length(self, engine):
        resource = Resource(engine)

        def worker():
            yield from resource.occupy(1.0)

        for _ in range(3):
            engine.process(worker())
        engine.run(until=0.5)
        assert resource.in_use == 1
        assert resource.queue_length == 2

    def test_utilization_full(self, engine):
        resource = Resource(engine)

        def worker():
            yield from resource.occupy(2.0)

        engine.process(worker())
        engine.run()
        assert resource.utilization() == pytest.approx(1.0)

    def test_utilization_half(self, engine):
        resource = Resource(engine)

        def worker():
            yield from resource.occupy(1.0)
            yield engine.timeout(1.0)

        engine.process(worker())
        engine.run()
        assert resource.utilization() == pytest.approx(0.5)

    def test_release_hands_unit_to_waiter(self, engine):
        # release() with a queue grants directly: in_use stays constant.
        resource = Resource(engine)

        def holder():
            yield resource.request()
            yield engine.timeout(1.0)
            resource.release()

        def waiter():
            yield resource.request()
            assert resource.in_use == 1
            resource.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert resource.in_use == 0


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("x")
        event = store.get()
        assert event.triggered
        assert event.value == "x"

    def test_get_then_put(self, engine):
        store = Store(engine)
        event = store.get()
        assert not event.triggered
        store.put("y")
        assert event.triggered

    def test_fifo_order(self, engine):
        store = Store(engine)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_filtered_get_skips_non_matching(self, engine):
        store = Store(engine)
        store.put({"tag": 1})
        store.put({"tag": 2})
        event = store.get(lambda m: m["tag"] == 2)
        assert event.value == {"tag": 2}
        assert store.get().value == {"tag": 1}

    def test_pending_filtered_getter_matched_on_put(self, engine):
        store = Store(engine)
        event = store.get(lambda m: m == "wanted")
        store.put("other")
        assert not event.triggered
        store.put("wanted")
        assert event.triggered
        assert len(store) == 1  # "other" still there

    def test_oldest_matching_getter_wins(self, engine):
        store = Store(engine)
        first = store.get()
        second = store.get()
        store.put("only")
        assert first.triggered and not second.triggered

    def test_len_and_peek(self, engine):
        store = Store(engine)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.peek_all() == ("a", "b")

    def test_total_put_counter(self, engine):
        store = Store(engine)
        for i in range(5):
            store.put(i)
        assert store.total_put == 5

    def test_close_fails_pending_getters(self, engine):
        store = Store(engine)
        event = store.get()
        event.add_callback(lambda e: None)
        store.close(RuntimeError("closed"))
        assert not event.ok

    def test_put_on_closed_raises(self, engine):
        store = Store(engine)
        store.close(RuntimeError("closed"))
        with pytest.raises(SimulationError, match="closed"):
            store.put("x")

    def test_get_on_closed_fails(self, engine):
        store = Store(engine)
        store.close(RuntimeError("closed"))
        event = store.get()
        event.add_callback(lambda e: None)
        assert not event.ok
