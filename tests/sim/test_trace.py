"""Unit tests for repro.sim.trace."""

from repro.sim import Trace


class TestTrace:
    def test_disabled_is_noop(self):
        trace = Trace(enabled=False)
        trace.emit(1.0, "compute", "m0", 0.5)
        assert len(trace) == 0

    def test_emit_records(self):
        trace = Trace()
        trace.emit(1.0, "compute", "m0", 0.5, work=100)
        assert len(trace) == 1
        record = trace.records[0]
        assert record.time == 1.0
        assert record.category == "compute"
        assert record.actor == "m0"
        assert record.duration == 0.5
        assert record.detail["work"] == 100

    def test_filter_by_category(self):
        trace = Trace()
        trace.emit(1.0, "pack", "a", 0.1)
        trace.emit(2.0, "drain", "b", 0.2)
        trace.emit(3.0, "pack", "b", 0.3)
        assert len(trace.filter("pack")) == 2
        assert len(trace.filter("drain")) == 1

    def test_filter_by_actor(self):
        trace = Trace()
        trace.emit(1.0, "pack", "a", 0.1)
        trace.emit(2.0, "pack", "b", 0.2)
        assert len(trace.filter(actor="a")) == 1

    def test_filter_both(self):
        trace = Trace()
        trace.emit(1.0, "pack", "a", 0.1)
        trace.emit(2.0, "drain", "a", 0.2)
        assert len(trace.filter("pack", "a")) == 1

    def test_total_duration(self):
        trace = Trace()
        trace.emit(1.0, "pack", "a", 0.1)
        trace.emit(2.0, "pack", "b", 0.2)
        assert trace.total_duration("pack") == 0.30000000000000004 or abs(
            trace.total_duration("pack") - 0.3
        ) < 1e-12

    def test_by_actor(self):
        trace = Trace()
        trace.emit(1.0, "drain", "root", 0.5)
        trace.emit(2.0, "drain", "root", 0.5)
        trace.emit(3.0, "drain", "other", 0.1)
        by_actor = trace.by_actor("drain")
        assert by_actor["root"] == 1.0
        assert by_actor["other"] == 0.1

    def test_categories(self):
        trace = Trace()
        trace.emit(1.0, "pack", "a", 1.0)
        trace.emit(2.0, "sync", "a", 2.0)
        categories = trace.categories()
        assert categories == {"pack": 1.0, "sync": 2.0}

    def test_iterable(self):
        trace = Trace()
        trace.emit(1.0, "x", "a")
        assert [r.category for r in trace] == ["x"]

    def test_point_events_have_zero_duration(self):
        trace = Trace()
        trace.emit(1.0, "mark", "a")
        assert trace.records[0].duration == 0.0
