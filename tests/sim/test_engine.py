"""Unit tests for repro.sim.engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine, Store


@pytest.fixture
def engine():
    return Engine()


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_run_returns_final_time(self, engine):
        engine.timeout(4.0)
        assert engine.run() == 4.0

    def test_until_stops_early(self, engine):
        engine.timeout(10.0)
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0

    def test_until_in_past_raises(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.run(until=0.5)

    def test_resume_after_until(self, engine):
        timer = engine.timeout(10.0)
        engine.run(until=3.0)
        assert not timer.processed
        engine.run()
        assert timer.processed
        assert engine.now == 10.0

    def test_empty_run_keeps_time(self, engine):
        assert engine.run() == 0.0

    def test_step_on_empty_queue_raises(self, engine):
        with pytest.raises(SimulationError, match="empty"):
            engine.step()


class TestOrdering:
    def test_simultaneous_events_fifo(self, engine):
        order = []
        for i in range(5):
            event = engine.event()
            event.add_callback(lambda _e, i=i: order.append(i))
            event.succeed()
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_order_beats_trigger_order(self, engine):
        order = []
        late = engine.timeout(2.0)
        late.add_callback(lambda _e: order.append("late"))
        early = engine.timeout(1.0)
        early.add_callback(lambda _e: order.append("early"))
        engine.run()
        assert order == ["early", "late"]

    def test_call_soon_runs_after_queued(self, engine):
        order = []
        event = engine.event()
        event.add_callback(lambda _e: order.append("queued"))
        event.succeed()
        engine.call_soon(lambda: order.append("soon"))
        engine.run()
        assert order == ["queued", "soon"]

    def test_events_processed_counter(self, engine):
        engine.timeout(1.0)
        engine.timeout(2.0)
        engine.run()
        assert engine.events_processed == 2


class TestDeadlockDetection:
    def test_blocked_process_raises(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck(), name="stuck")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert any("stuck" in b for b in excinfo.value.blocked)

    def test_check_deadlock_false_suppresses(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck())
        engine.run(check_deadlock=False)  # must not raise

    def test_clean_completion_no_deadlock(self, engine):
        def fine():
            yield engine.timeout(1.0)

        engine.process(fine())
        engine.run()

    def test_multiple_blocked_all_reported(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck(), name="s1")
        engine.process(stuck(), name="s2")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert len(excinfo.value.blocked) == 2
