"""Unit tests for repro.sim.engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine, Store


@pytest.fixture
def engine():
    return Engine()


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_run_returns_final_time(self, engine):
        engine.timeout(4.0)
        assert engine.run() == 4.0

    def test_until_stops_early(self, engine):
        engine.timeout(10.0)
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0

    def test_until_in_past_raises(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.run(until=0.5)

    def test_resume_after_until(self, engine):
        timer = engine.timeout(10.0)
        engine.run(until=3.0)
        assert not timer.processed
        engine.run()
        assert timer.processed
        assert engine.now == 10.0

    def test_empty_run_keeps_time(self, engine):
        assert engine.run() == 0.0

    def test_step_on_empty_queue_raises(self, engine):
        with pytest.raises(SimulationError, match="empty"):
            engine.step()


class TestOrdering:
    def test_simultaneous_events_fifo(self, engine):
        order = []
        for i in range(5):
            event = engine.event()
            event.add_callback(lambda _e, i=i: order.append(i))
            event.succeed()
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_order_beats_trigger_order(self, engine):
        order = []
        late = engine.timeout(2.0)
        late.add_callback(lambda _e: order.append("late"))
        early = engine.timeout(1.0)
        early.add_callback(lambda _e: order.append("early"))
        engine.run()
        assert order == ["early", "late"]

    def test_call_soon_runs_after_queued(self, engine):
        order = []
        event = engine.event()
        event.add_callback(lambda _e: order.append("queued"))
        event.succeed()
        engine.call_soon(lambda: order.append("soon"))
        engine.run()
        assert order == ["queued", "soon"]

    def test_events_processed_counter(self, engine):
        engine.timeout(1.0)
        engine.timeout(2.0)
        engine.run()
        assert engine.events_processed == 2

    def test_call_soon_beats_pending_sametime_timeout(self, engine):
        # Regression: a call_soon issued *at* time T must run before a
        # Timeout that was created earlier and merely fires at T.  The
        # old (time, seq) heap gave the timeout the lower sequence
        # number, so the shim lost the tie; the "ready now" lane bit
        # decides it regardless of creation order.
        order = []
        first = engine.timeout(5.0)
        first.add_callback(lambda _e: engine.call_soon(lambda: order.append("soon")))
        second = engine.timeout(5.0)
        second.add_callback(lambda _e: order.append("timeout"))
        engine.run()
        assert order == ["soon", "timeout"]

    def test_trigger_at_t_beats_pending_sametime_timeout(self, engine):
        # Same edge for a bare Event succeeded at T: immediate work
        # precedes a previously scheduled timeout landing on T.
        order = []
        pending = engine.event()
        pending.add_callback(lambda _e: order.append("event"))
        first = engine.timeout(5.0)
        first.add_callback(lambda _e: pending.succeed())
        second = engine.timeout(5.0)
        second.add_callback(lambda _e: order.append("timeout"))
        engine.run()
        assert order == ["event", "timeout"]

    def test_zero_delay_timeout_stays_fifo_with_call_soon(self, engine):
        # A zero-delay timeout fires "now", so it shares the immediate
        # lane and keeps FIFO order with surrounding call_soon entries.
        order = []
        engine.call_soon(lambda: order.append("a"))
        engine.timeout(0.0).add_callback(lambda _e: order.append("b"))
        engine.call_soon(lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_call_at_fires_at_exact_time(self, engine):
        times = []
        engine.call_at(2.5, lambda: times.append(engine.now))
        engine.timeout(5.0)
        engine.run()
        assert times == [2.5]

    def test_call_at_in_past_raises(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.call_at(0.5, lambda: None)


class TestEventStore:
    def test_store_grows_and_recycles_slots(self, engine):
        # Push far past the initial slot capacity with interleaved
        # processing so slots are freed and recycled mid-run.
        hits = []

        def waves():
            for wave in range(5):
                timers = [engine.timeout(wave + i / 4096.0) for i in range(1500)]
                yield timers[-1]
                hits.append(sum(1 for timer in timers if timer.processed))

        engine.process(waves())
        engine.run()
        assert hits == [1500] * 5
        assert engine.events_processed >= 7500

    def test_interleaved_order_preserved_across_growth(self, engine):
        order = []
        for i in range(3000):
            engine.timeout(float(i % 7)).add_callback(lambda _e, i=i: order.append(i))
        engine.run()
        by_time = sorted(range(3000), key=lambda i: (i % 7, i))
        assert order == by_time


class TestDeadlockDetection:
    def test_blocked_process_raises(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck(), name="stuck")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert any("stuck" in b for b in excinfo.value.blocked)

    def test_check_deadlock_false_suppresses(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck())
        engine.run(check_deadlock=False)  # must not raise

    def test_clean_completion_no_deadlock(self, engine):
        def fine():
            yield engine.timeout(1.0)

        engine.process(fine())
        engine.run()

    def test_multiple_blocked_all_reported(self, engine):
        store = Store(engine)

        def stuck():
            yield store.get()

        engine.process(stuck(), name="s1")
        engine.process(stuck(), name="s2")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert len(excinfo.value.blocked) == 2
