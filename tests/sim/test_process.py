"""Unit tests for repro.sim.process."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.process import Process, ProcessKilled


@pytest.fixture
def engine():
    return Engine()


class TestLifecycle:
    def test_return_value_becomes_event_value(self, engine):
        def prog():
            yield engine.timeout(1.0)
            return "result"

        process = engine.process(prog())
        engine.run()
        assert process.value == "result"

    def test_yield_receives_event_value(self, engine):
        def prog():
            got = yield engine.timeout(2.0, value="payload")
            return got

        process = engine.process(prog())
        engine.run()
        assert process.value == "payload"

    def test_is_alive_transitions(self, engine):
        def prog():
            yield engine.timeout(1.0)

        process = engine.process(prog())
        assert process.is_alive
        engine.run()
        assert not process.is_alive

    def test_requires_generator_object(self, engine):
        def not_a_generator():
            return 42

        with pytest.raises(SimulationError, match="generator"):
            Process(engine, not_a_generator())  # type: ignore[arg-type]

    def test_processes_start_in_creation_order(self, engine):
        order = []

        def prog(i):
            order.append(i)
            yield engine.timeout(0.0)

        for i in range(4):
            engine.process(prog(i))
        engine.run()
        assert order == [0, 1, 2, 3]


class TestForkJoin:
    def test_process_waits_for_process(self, engine):
        def child():
            yield engine.timeout(3.0)
            return "child-done"

        def parent():
            result = yield engine.process(child())
            return result

        process = engine.process(parent())
        engine.run()
        assert process.value == "child-done"
        assert engine.now == 3.0

    def test_join_already_finished(self, engine):
        def child():
            yield engine.timeout(1.0)
            return 7

        child_proc = engine.process(child())

        def parent():
            yield engine.timeout(5.0)
            value = yield child_proc
            return value

        parent_proc = engine.process(parent())
        engine.run()
        assert parent_proc.value == 7


class TestFailure:
    def test_exception_fails_process(self, engine):
        def prog():
            yield engine.timeout(1.0)
            raise ValueError("inner")

        process = engine.process(prog())
        process.add_callback(lambda e: None)  # consume
        engine.run()
        assert not process.ok
        assert isinstance(process.exception, ValueError)

    def test_exception_propagates_to_joiner(self, engine):
        def child():
            yield engine.timeout(1.0)
            raise ValueError("child error")

        def parent():
            try:
                yield engine.process(child())
            except ValueError as error:
                return f"caught {error}"

        process = engine.process(parent())
        engine.run()
        assert process.value == "caught child error"

    def test_yielding_non_event_fails(self, engine):
        def prog():
            yield 42

        process = engine.process(prog())
        process.add_callback(lambda e: None)
        engine.run()
        assert not process.ok
        assert "yield" in str(process.exception)


class TestKill:
    def test_kill_blocked_process(self, engine):
        cleaned = []

        def prog():
            try:
                yield engine.timeout(100.0)
            finally:
                cleaned.append(True)

        process = engine.process(prog())
        engine.run(until=1.0)
        process.kill()
        assert cleaned == [True]
        assert not process.is_alive
        engine.run()  # no deadlock, no stray events

    def test_kill_before_start(self, engine):
        def prog():
            yield engine.timeout(1.0)

        process = engine.process(prog())
        process.kill()  # never ran
        engine.run()
        assert not process.is_alive

    def test_kill_is_idempotent(self, engine):
        def prog():
            yield engine.timeout(1.0)

        process = engine.process(prog())
        engine.run()
        process.kill()
        process.kill()

    def test_killed_process_does_not_deadlock_engine(self, engine):
        from repro.sim import Store

        store = Store(engine)

        def stuck():
            yield store.get()

        process = engine.process(stuck())
        engine.run(check_deadlock=False)
        process.kill()
        engine.run()  # clean
