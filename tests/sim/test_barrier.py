"""Unit tests for repro.sim.barrier."""

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, Engine


@pytest.fixture
def engine():
    return Engine()


class TestBarrier:
    def test_parties_validation(self, engine):
        with pytest.raises(SimulationError):
            Barrier(engine, parties=0)

    def test_cost_validation(self, engine):
        with pytest.raises(SimulationError):
            Barrier(engine, parties=2, cost=-1.0)

    def test_releases_when_all_arrive(self, engine):
        barrier = Barrier(engine, parties=3, cost=0.0)
        released = []

        def worker(i, delay):
            yield engine.timeout(delay)
            yield barrier.wait()
            released.append((i, engine.now))

        engine.process(worker(0, 1.0))
        engine.process(worker(1, 2.0))
        engine.process(worker(2, 5.0))
        engine.run()
        # Everyone released at the last arrival time.
        assert released == [(0, 5.0), (1, 5.0), (2, 5.0)]

    def test_cost_charged_once_per_cycle(self, engine):
        barrier = Barrier(engine, parties=2, cost=0.5)
        times = []

        def worker():
            yield barrier.wait()
            times.append(engine.now)

        engine.process(worker())
        engine.process(worker())
        engine.run()
        assert times == [0.5, 0.5]

    def test_reusable_across_cycles(self, engine):
        barrier = Barrier(engine, parties=2, cost=0.25)
        cycles_seen = []

        def worker():
            for _ in range(3):
                cycle = yield barrier.wait()
                cycles_seen.append(cycle)

        engine.process(worker())
        engine.process(worker())
        engine.run()
        assert barrier.cycles == 3
        assert sorted(cycles_seen) == [0, 0, 1, 1, 2, 2]
        assert engine.now == pytest.approx(0.75)

    def test_single_party_barrier_is_instant_plus_cost(self, engine):
        barrier = Barrier(engine, parties=1, cost=0.1)

        def worker():
            yield barrier.wait()

        engine.process(worker())
        engine.run()
        assert engine.now == pytest.approx(0.1)

    def test_arrived_count(self, engine):
        barrier = Barrier(engine, parties=3)

        def worker():
            yield barrier.wait()

        engine.process(worker())
        engine.process(worker())
        engine.run(check_deadlock=False)
        assert barrier.arrived == 2

    def test_value_is_cycle_index(self, engine):
        barrier = Barrier(engine, parties=1)

        def worker():
            first = yield barrier.wait()
            second = yield barrier.wait()
            return (first, second)

        process = engine.process(worker())
        engine.run()
        assert process.value == (0, 1)

    def test_missing_party_deadlocks(self, engine):
        from repro.errors import DeadlockError

        barrier = Barrier(engine, parties=2)

        def worker():
            yield barrier.wait()

        engine.process(worker())
        with pytest.raises(DeadlockError):
            engine.run()
