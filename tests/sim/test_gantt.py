"""Tests for the ASCII Gantt renderer."""

from repro.sim import Trace


def make_trace():
    trace = Trace()
    # actor "a": compute [0, 1], pack [1, 1.5]
    trace.emit(1.0, "compute", "a", 1.0)
    trace.emit(1.5, "pack", "a", 0.5)
    # actor "b": drain [0.5, 2.0]
    trace.emit(2.0, "drain", "b", 1.5)
    return trace


class TestGantt:
    def test_empty_trace(self):
        assert "no traced intervals" in Trace().gantt()

    def test_rows_per_actor(self):
        out = make_trace().gantt(width=20)
        lines = out.splitlines()
        assert any(line.strip().startswith("a |") for line in lines)
        assert any(line.strip().startswith("b |") for line in lines)

    def test_legend_present(self):
        assert "legend:" in make_trace().gantt()

    def test_cells_show_dominant_category(self):
        out = make_trace().gantt(width=20)
        row_a = next(l for l in out.splitlines() if l.strip().startswith("a |"))
        cells = row_a.split("|")[1]
        # First half of actor a's row is compute.
        assert cells[0] == "c"
        assert "p" in cells

    def test_idle_is_dot(self):
        out = make_trace().gantt(width=20)
        row_a = next(l for l in out.splitlines() if l.strip().startswith("a |"))
        cells = row_a.split("|")[1]
        assert cells[-1] == "."  # a is idle at the end

    def test_actor_filter(self):
        out = make_trace().gantt(width=20, actors=["a"])
        assert " b |" not in out

    def test_category_filter(self):
        out = make_trace().gantt(width=20, categories=("compute",))
        row_a = next(l for l in out.splitlines() if l.strip().startswith("a |"))
        assert "p" not in row_a.split("|")[1]

    def test_point_events_ignored(self):
        trace = Trace()
        trace.emit(1.0, "compute", "a", 0.0)  # zero duration
        assert "no traced intervals" in trace.gantt()

    def test_row_width_respected(self):
        out = make_trace().gantt(width=33)
        row_a = next(l for l in out.splitlines() if l.strip().startswith("a |"))
        assert len(row_a.split("|")[1]) == 33

    def test_gather_root_shows_drain_run(self):
        """Integration: the gather root's row is dominated by drains."""
        from repro.cluster import ucf_testbed
        from repro.collectives import run_gather

        outcome = run_gather(ucf_testbed(5), 100_000, trace=True)
        root = outcome.runtime.fastest_pid
        root_actor = f"pid{root}@{outcome.runtime.topology.machines[root].name}"
        out = outcome.result.trace.gantt(width=50, actors=[root_actor])
        cells = out.splitlines()[1].split("|")[1]
        assert cells.count("d") > 20
