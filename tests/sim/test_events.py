"""Unit tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Engine, Event, Timeout, UNSET


@pytest.fixture
def engine():
    return Engine()


class TestEvent:
    def test_initial_state(self, engine):
        event = Event(engine, "e")
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, engine):
        event = Event(engine).succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, engine):
        event = Event(engine).succeed()
        with pytest.raises(SimulationError, match="already triggered"):
            event.succeed()

    def test_fail_carries_exception(self, engine):
        error = RuntimeError("boom")
        event = Event(engine).fail(error)
        event.add_callback(lambda e: None)  # consume so run() doesn't raise
        assert event.triggered
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_fail_requires_exception(self, engine):
        with pytest.raises(SimulationError, match="exception"):
            Event(engine).fail("not an exception")

    def test_value_before_trigger_raises(self, engine):
        with pytest.raises(SimulationError, match="no value"):
            _ = Event(engine).value

    def test_callback_invoked_on_process(self, engine):
        event = Event(engine)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("hello")
        engine.run()
        assert seen == ["hello"]

    def test_late_callback_still_runs(self, engine):
        event = Event(engine).succeed(1)
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        engine.run()
        assert seen == [1]

    def test_unhandled_failure_surfaces_at_run(self, engine):
        Event(engine).fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            engine.run()

    def test_unset_is_falsy(self):
        assert not UNSET
        assert repr(UNSET) == "<UNSET>"


class TestTimeout:
    def test_advances_clock(self, engine):
        Timeout(engine, 2.5)
        assert engine.run() == 2.5

    def test_value_defaults_to_delay(self, engine):
        timeout = Timeout(engine, 1.5)
        engine.run()
        assert timeout.value == 1.5

    def test_explicit_value(self, engine):
        timeout = Timeout(engine, 1.0, value="done")
        engine.run()
        assert timeout.value == "done"

    def test_zero_delay_ok(self, engine):
        timeout = Timeout(engine, 0.0)
        engine.run()
        assert timeout.processed
        assert engine.now == 0.0

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError, match=">= 0"):
            Timeout(engine, -1.0)


class TestAllOf:
    def test_waits_for_all(self, engine):
        t1 = Timeout(engine, 1.0, value="a")
        t2 = Timeout(engine, 3.0, value="b")
        combined = AllOf(engine, [t1, t2])
        engine.run()
        assert combined.value == ("a", "b")
        assert engine.now == 3.0

    def test_empty_succeeds_immediately(self, engine):
        combined = AllOf(engine, [])
        assert combined.triggered
        assert combined.value == ()

    def test_child_failure_propagates(self, engine):
        t1 = Timeout(engine, 1.0)
        bad = Event(engine)
        combined = AllOf(engine, [t1, bad])
        combined.add_callback(lambda e: None)
        bad.fail(RuntimeError("child failed"))
        engine.run()
        assert not combined.ok
        assert isinstance(combined.exception, RuntimeError)

    def test_values_in_construction_order(self, engine):
        t_late = Timeout(engine, 5.0, value="late")
        t_early = Timeout(engine, 1.0, value="early")
        combined = AllOf(engine, [t_late, t_early])
        engine.run()
        assert combined.value == ("late", "early")


class TestAnyOf:
    def test_first_wins(self, engine):
        t1 = Timeout(engine, 5.0, value="slow")
        t2 = Timeout(engine, 1.0, value="fast")
        combined = AnyOf(engine, [t1, t2])
        engine.run()
        assert combined.value == (1, "fast")

    def test_result_includes_winner_index(self, engine):
        t1 = Timeout(engine, 1.0, value="x")
        combined = AnyOf(engine, [t1])
        engine.run()
        assert combined.value[0] == 0
