"""Tests for the robustness (fault-injection) experiment."""

import math

from repro.experiments.robustness import robustness_plans, robustness_report


class TestPlans:
    def test_scenario_table(self):
        from repro.cluster import ucf_testbed

        plans = robustness_plans(ucf_testbed(4))
        assert set(plans) == {"baseline", "straggler", "congestion", "flaky"}
        assert plans["baseline"][0].is_empty
        assert plans["flaky"][1] is not None  # flaky pairs with a retry policy


class TestReport:
    def test_small_sweep_finite_and_deterministic(self):
        reports = [
            robustness_report(processor_counts=(2, 4), size_kb=25, seed=1)
            for _ in range(2)
        ]
        report = reports[0]
        assert report.experiment_id == "robustness"
        # 4 metric blocks x 4 scenarios
        assert len(report.series) == 16
        for label, points in report.series.items():
            for p, factor in points.items():
                assert math.isfinite(factor) and factor > 0, (label, p)
        assert reports[0].series == reports[1].series

    def test_baseline_matches_fault_free_figures(self):
        from repro.cluster import ucf_testbed
        from repro.collectives import RootPolicy, WorkloadPolicy, run_gather
        from repro.experiments.improvement import improvement_factor
        from repro.util.units import BYTES_PER_INT, kb

        report = robustness_report(processor_counts=(4,), size_kb=25, seed=1)
        n = kb(25) // BYTES_PER_INT
        topology = ucf_testbed(4)
        t_s = run_gather(topology, n, root=RootPolicy.SLOWEST,
                         workload=WorkloadPolicy.EQUAL, seed=1).time
        t_f = run_gather(topology, n, root=RootPolicy.FASTEST,
                         workload=WorkloadPolicy.EQUAL, seed=1).time
        assert report.series["gather Ts/Tf [baseline]"][4] == (
            improvement_factor(t_s, t_f)
        )
