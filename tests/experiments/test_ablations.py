"""Tests for the mechanism ablations."""

import pytest

from repro.cluster import ucf_testbed
from repro.experiments import (
    ablation_nic_serialization,
    ablation_pack_asymmetry,
    ablation_rank_noise,
    ablation_report,
    symmetric_pack_topology,
)


class TestSymmetricPackTopology:
    def test_pack_equals_unpack(self):
        topo = symmetric_pack_topology(ucf_testbed(4))
        for machine in topo.machines:
            assert machine.pack_cost == machine.unpack_cost
            assert machine.msg_overhead == 0.0

    def test_structure_preserved(self):
        original = ucf_testbed(4)
        topo = symmetric_pack_topology(original)
        assert topo.num_machines == original.num_machines
        assert [m.name for m in topo.machines] == [m.name for m in original.machines]
        assert [m.cpu_rate for m in topo.machines] == [
            m.cpu_rate for m in original.machines
        ]


class TestPackAsymmetryAblation:
    def test_inversion_requires_asymmetry(self):
        result = ablation_pack_asymmetry(size_kb=250)
        assert result["with"] < 1.0  # the paper's p=2 inversion
        assert result["without"] >= result["with"]
        assert result["without"] >= 0.98  # inversion gone


class TestNicSerializationAblation:
    def test_contention_costs_time(self):
        result = ablation_nic_serialization(size_kb=250, p=8)
        assert result["with"] > result["without"]
        assert result["contention_cost"] > 1.2


class TestRankNoiseAblation:
    def test_noise_changes_balancing_value(self):
        result = ablation_rank_noise(size_kb=250, p=6, noise_sigma=0.5)
        assert result["noisy"] != pytest.approx(result["clean"], rel=0.01)
        assert result["clean"] > 1.0  # perfect scores: balancing helps


class TestReport:
    def test_renders(self):
        report = ablation_report()
        text = report.render()
        assert "pack asymmetry" in text
        assert "rank noise" in text
        assert report.experiment_id == "ablations"
