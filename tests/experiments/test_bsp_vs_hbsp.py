"""Tests for the BSP-vs-HBSP headline experiment (reduced scale)."""

import pytest

from repro.experiments import bsp_vs_hbsp


@pytest.fixture(scope="module")
def report():
    return bsp_vs_hbsp(p=6)


class TestBspVsHbsp:
    def test_structure(self, report):
        assert report.experiment_id == "bsp-vs-hbsp"
        factors = report.series["T_bsp/T_hbsp"]
        assert set(factors) == {
            "gather", "scatter", "broadcast", "sample_sort",
            "matvec", "histogram", "jacobi",
        }

    def test_rules_always_help(self, report):
        factors = report.series["T_bsp/T_hbsp"]
        assert all(factor > 1.0 for factor in factors.values())

    def test_broadcast_gains_least(self, report):
        factors = report.series["T_bsp/T_hbsp"]
        assert factors["broadcast"] == min(factors.values())

    def test_root_bound_collectives_gain_clearly(self, report):
        factors = report.series["T_bsp/T_hbsp"]
        assert factors["gather"] > 1.2
        assert factors["scatter"] > 1.2
