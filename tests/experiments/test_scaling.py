"""Tests for the scaling experiment."""

import pytest

from repro.experiments import app_scaling


class TestAppScaling:
    def test_small_sweep_structure(self):
        report = app_scaling(processor_counts=(1, 4), apps=("histogram",))
        assert report.experiment_id == "scaling"
        assert set(report.series) == {"histogram"}
        assert report.xs() == [1, 4]

    def test_baseline_is_one(self):
        report = app_scaling(processor_counts=(1,), apps=("histogram", "matvec"))
        for series in report.series.values():
            assert series[1] == 1.0

    def test_speedup_positive(self):
        report = app_scaling(processor_counts=(1, 6), apps=("jacobi",))
        assert report.series["jacobi"][6] > 1.0

    def test_efficiency_metric(self):
        report = app_scaling(
            processor_counts=(1, 6), apps=("histogram",), metric="efficiency"
        )
        # Efficiency is bounded by 1 and positive.
        for value in report.series["histogram"].values():
            assert 0 < value <= 1.0 + 1e-9

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            app_scaling(processor_counts=(1,), metric="latency")

    def test_registered_in_cli(self):
        from repro.experiments import EXPERIMENTS

        assert "scaling" in EXPERIMENTS
