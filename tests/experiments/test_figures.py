"""Tests for the Figure 3/4 experiment harness (reduced sweeps).

The full-sweep shape assertions live in tests/integration/test_shapes.py;
here we validate the harness mechanics on small sweeps.
"""

import pytest

from repro.experiments import (
    fig3a_gather_root,
    fig3b_gather_balance,
    fig4a_broadcast_root,
    fig4b_broadcast_balance,
)

SIZES = (100,)
PS = (2, 5)


class TestFig3a:
    def test_report_structure(self):
        report = fig3a_gather_root(SIZES, PS)
        assert report.experiment_id == "fig3a"
        assert list(report.series) == ["100 KB"]
        assert report.xs() == [2, 5]

    def test_factors_positive(self):
        report = fig3a_gather_root(SIZES, PS)
        assert all(v > 0 for v in report.series["100 KB"].values())

    def test_deterministic(self):
        a = fig3a_gather_root(SIZES, PS, seed=1)
        b = fig3a_gather_root(SIZES, PS, seed=1)
        assert a.series == b.series


class TestFig3b:
    def test_report_structure(self):
        report = fig3b_gather_balance(SIZES, PS)
        assert report.experiment_id == "fig3b"
        assert report.xs() == [2, 5]

    def test_noise_sigma_zero_supported(self):
        report = fig3b_gather_balance(SIZES, PS, noise_sigma=0.0)
        assert all(v > 0 for v in report.series["100 KB"].values())

    def test_score_seed_changes_results(self):
        a = fig3b_gather_balance(SIZES, (5,), noise_sigma=0.5, score_seed=1)
        b = fig3b_gather_balance(SIZES, (5,), noise_sigma=0.5, score_seed=2)
        assert a.series != b.series


class TestFig4:
    def test_fig4a_structure(self):
        report = fig4a_broadcast_root(SIZES, PS)
        assert report.experiment_id == "fig4a"
        assert all(v > 0 for v in report.series["100 KB"].values())

    def test_fig4b_structure(self):
        report = fig4b_broadcast_balance(SIZES, PS)
        assert report.experiment_id == "fig4b"
        assert all(v > 0 for v in report.series["100 KB"].values())

    def test_fig4a_near_one(self):
        report = fig4a_broadcast_root(SIZES, PS)
        for factor in report.series["100 KB"].values():
            assert 0.8 < factor < 1.5
