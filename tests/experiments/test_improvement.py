"""Unit tests for repro.experiments.improvement."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentReport, improvement_factor


class TestImprovementFactor:
    def test_definition(self):
        # T_A / T_B: B faster than A => factor > 1.
        assert improvement_factor(2.0, 1.0) == 2.0

    def test_equal_times(self):
        assert improvement_factor(1.5, 1.5) == 1.0

    def test_zero_t_b_rejected(self):
        with pytest.raises(ExperimentError):
            improvement_factor(1.0, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            improvement_factor(-1.0, 1.0)


class TestExperimentReport:
    def make(self):
        return ExperimentReport(
            experiment_id="demo",
            title="Demo",
            x_name="p",
            series={"100 KB": {2: 0.9, 4: 1.2}, "500 KB": {2: 0.95, 4: 1.3}},
            notes=["a note"],
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "[demo]" in text
        assert "100 KB" in text
        assert "a note" in text

    def test_xs_first_seen_order(self):
        assert self.make().xs() == [2, 4]

    def test_values_at(self):
        report = self.make()
        assert report.values_at(2) == {"100 KB": 0.9, "500 KB": 0.95}

    def test_mean_factor(self):
        report = self.make()
        assert report.mean_factor(4) == pytest.approx(1.25)

    def test_mean_factor_missing_x(self):
        with pytest.raises(ExperimentError):
            self.make().mean_factor(99)

    def test_extra_appended(self):
        report = self.make()
        report.extra = "APPENDIX"
        assert report.render().endswith("APPENDIX")

    def test_str_is_render(self):
        report = self.make()
        assert str(report) == report.render()
