"""Tests for the calibration-sensitivity experiment (reduced scale)."""

import pytest

from repro.experiments import calibration_sensitivity


@pytest.fixture(scope="module")
def report():
    return calibration_sensitivity(p=5)


class TestSensitivity:
    def test_structure(self, report):
        assert report.experiment_id == "sensitivity"
        assert "baseline" in report.series
        for findings in report.series.values():
            assert set(findings) == {"gather@p", "gather@2", "bcast@p"}

    def test_core_contrast_robust(self, report):
        """gather exploits heterogeneity more than broadcast, always."""
        for label, findings in report.series.items():
            assert findings["gather@p"] > findings["bcast@p"], label

    def test_inversion_tied_to_pack_asymmetry(self, report):
        assert report.series["baseline"]["gather@2"] < 1.0
        assert report.series["pack = unpack"]["gather@2"] > 0.95

    def test_more_heterogeneity_more_improvement(self, report):
        assert (
            report.series["cpu spread 8x"]["gather@p"]
            > report.series["cpu spread 2x"]["gather@p"]
        )

    def test_registered(self):
        from repro.experiments import EXPERIMENTS

        assert "sensitivity" in EXPERIMENTS
