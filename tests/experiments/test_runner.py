"""Tests for the experiment CLI runner."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_design_doc_ids_present(self):
        expected = {
            "table1",
            "fig3a",
            "fig3b",
            "fig4a",
            "fig4b",
            "sec4-bcast-phases",
            "sec4-gather-hierarchy",
            "model-vs-sim",
            "ablations",
            "scaling",
            "bsp-vs-hbsp",
            "sensitivity",
            "robustness",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_returns_report(self):
        report = run_experiment("table1")
        assert report.experiment_id == "table1"

    def test_seed_rejected_for_seedless_experiments(self):
        with pytest.raises(ExperimentError, match="does not accept a seed"):
            run_experiment("table1", seed=1)

    def test_robustness_accepts_a_seed(self):
        import inspect

        assert "seed" in inspect.signature(EXPERIMENTS["robustness"]).parameters


class TestCli:
    def test_main_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out

    def test_main_multiple(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "table1"]) == 0
        assert capsys.readouterr().out.count("[table1]") == 2
