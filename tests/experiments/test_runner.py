"""Tests for the experiment CLI runner."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_design_doc_ids_present(self):
        expected = {
            "table1",
            "fig3a",
            "fig3b",
            "fig4a",
            "fig4b",
            "sec4-bcast-phases",
            "sec4-gather-hierarchy",
            "model-vs-sim",
            "ablations",
            "scaling",
            "bsp-vs-hbsp",
            "sensitivity",
            "robustness",
            "discovery",
            "tuning",
            "serve",
            "dynamics",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_returns_report(self):
        report = run_experiment("table1")
        assert report.experiment_id == "table1"

    def test_seed_rejected_for_seedless_experiments(self):
        with pytest.raises(ExperimentError, match="does not accept a seed"):
            run_experiment("table1", seed=1)

    def test_robustness_accepts_a_seed(self):
        import inspect

        assert "seed" in inspect.signature(EXPERIMENTS["robustness"]).parameters


class TestCli:
    def test_main_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out

    def test_main_multiple(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "table1"]) == 0
        assert capsys.readouterr().out.count("[table1]") == 2

    def test_profile_flag_dumps_stats(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--no-cache", "--profile",
                     "--profile-limit", "5"]) == 0
        captured = capsys.readouterr()
        assert "[table1]" in captured.out  # the report still renders
        assert "--- profile: table1 (top 5 by cumulative) ---" in captured.err
        assert "cumulative" in captured.err  # pstats column header

    def test_cache_dir_flag_populates_cache(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["fig3a", "--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        entries = list(tmp_path.rglob("*.json"))
        assert entries  # simulated grid points persisted

        assert main(["fig3a", "--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == first  # warm == cold, byte-wise

    def test_no_cache_flag_writes_nothing(self, monkeypatch, tmp_path, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1", "--no-cache"]) == 0
        assert list(tmp_path.rglob("*.json")) == []
