"""Tests for the Section-3/4 analysis experiments."""

import pytest

from repro.experiments import (
    model_fidelity,
    sec4_broadcast_phases,
    sec4_gather_hierarchy,
    table1_parameters,
)


class TestTable1:
    def test_renders_both_machines(self):
        report = table1_parameters()
        text = report.render()
        assert "HBSP^1 parameters" in text
        assert "HBSP^2 parameters" in text

    def test_r_series_normalised(self):
        report = table1_parameters()
        values = list(report.series["r_0j (testbed)"].values())
        assert min(values) == pytest.approx(1.0)

    def test_c_series_sums_to_one(self):
        report = table1_parameters()
        assert sum(report.series["c_0j (testbed)"].values()) == pytest.approx(1.0)


class TestSec4BroadcastPhases:
    def test_small_sweep(self):
        report = sec4_broadcast_phases(processor_counts=(2, 6), size_kb=100)
        assert report.experiment_id == "sec4-bcast-phases"
        for series in report.series.values():
            assert set(series) == {2, 6}

    def test_two_phase_wins_at_p6_for_mild_rs(self):
        report = sec4_broadcast_phases(processor_counts=(6,), size_kb=100)
        assert report.series["sim r_s=1.25"][6] > 1.0

    def test_crossover_later_for_larger_rs(self):
        report = sec4_broadcast_phases(processor_counts=(4,), size_kb=100)
        assert report.series["sim r_s=1.25"][4] > report.series["sim r_s=12"][4]

    def test_regime_table_in_extra(self):
        report = sec4_broadcast_phases(processor_counts=(2,), size_kb=100)
        assert "r_1s > m" in report.extra
        assert "r_1s <= m" in report.extra


class TestSec4GatherHierarchy:
    def test_small_sweep(self):
        report = sec4_gather_hierarchy(sizes_kb=(10, 500))
        assert set(report.series["hier/flat"]) == {10, 500}

    def test_penalty_amortises(self):
        report = sec4_gather_hierarchy(sizes_kb=(10, 1000))
        assert report.series["hier/flat"][10] > report.series["hier/flat"][1000]

    def test_oversized_share_hurts(self):
        report = sec4_gather_hierarchy(sizes_kb=(500,))
        assert report.series["oversized/balanced"][500] > 1.0

    def test_ledger_appendix(self):
        report = sec4_gather_hierarchy(sizes_kb=(10,))
        assert "cost ledger" in report.extra


class TestModelFidelity:
    def test_rank_correlation_high(self):
        report = model_fidelity(size_kb=100)
        rho_notes = [note for note in report.notes if "Spearman" in note]
        assert len(rho_notes) == 2
        for note in rho_notes:
            rho = float(note.rsplit("=", 1)[1])
            assert rho > 0.7

    def test_ratios_at_least_one_ish(self):
        """Simulated >= predicted (the model is optimistic about
        per-message overheads), within a bounded factor."""
        report = model_fidelity(size_kb=100)
        for series in report.series.values():
            for ratio in series.values():
                assert 0.9 < ratio < 10.0

    def test_all_collectives_present(self):
        report = model_fidelity(size_kb=100)
        for series in report.series.values():
            assert set(series) == {
                "gather", "broadcast-1p", "broadcast-2p", "scatter",
                "reduce", "allgather", "alltoall", "scan",
            }
