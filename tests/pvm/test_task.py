"""Unit tests for repro.pvm.task — message timing semantics."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterTopology, MachineSpec, NetworkSpec
from repro.pvm import VirtualMachine


def make_vm(trace=True, **net_kwargs):
    """Two-machine cluster with easily computed costs."""
    net = NetworkSpec(
        "net",
        gap=net_kwargs.pop("gap", 0.0),
        latency=net_kwargs.pop("latency", 0.0),
        sync_base=0.0,
        sync_per_member=0.0,
    )
    fast = MachineSpec(
        "fast", cpu_rate=1e6, nic_gap=1e-6, pack_cost=1.0, unpack_cost=0.5,
        msg_overhead=0.0,
    )
    slow = MachineSpec(
        "slow", cpu_rate=2.5e5, nic_gap=2e-6, pack_cost=1.0, unpack_cost=0.5,
        msg_overhead=0.0,
    )
    topo = ClusterTopology(Cluster("lan", net, [fast, slow]))
    return VirtualMachine(topo, trace=trace)


class TestSendTiming:
    def test_pack_inject_drain_sequence(self):
        vm = make_vm()
        done = {}

        def sender(task, dst):
            yield from task.send(dst, np.zeros(1000, dtype=np.uint8))
            done["send_returned"] = task.now

        def receiver(task):
            message = yield from task.recv()
            done["received"] = task.now
            return message.nbytes

        recv_task = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        # pack on fast: 1000 * 1.0 / 1e6 = 1 ms; inject: 1000 * 1e-6 = 1 ms
        assert done["send_returned"] == pytest.approx(2e-3)
        # drain on slow NIC: 1000 * 2e-6 = 2 ms; unpack: 1000*0.5/2.5e5 = 2 ms
        assert done["received"] == pytest.approx(6e-3)

    def test_wire_gap_caps_fast_nic(self):
        vm = make_vm(gap=5e-6)  # wire slower than both NICs

        def sender(task, dst):
            yield from task.send(dst, np.zeros(1000, dtype=np.uint8))

        def receiver(task):
            yield from task.recv()
            return task.now

        recv_task = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        # inject: 1000*5e-6 = 5ms, drain 5ms, pack 1ms, unpack 2ms = 13ms
        assert recv_task.process.value == pytest.approx(13e-3)

    def test_latency_added_once(self):
        vm = make_vm(latency=0.5)

        def sender(task, dst):
            yield from task.send(dst, b"x")

        def receiver(task):
            yield from task.recv()
            return task.now

        recv_task = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        assert recv_task.process.value > 0.5

    def test_self_send_free_and_instant(self):
        vm = make_vm()

        def prog(task):
            delivery = yield from task.send(task.tid, np.zeros(10_000, dtype=np.int32))
            assert task.now == 0.0  # no pack/inject charged
            message = yield delivery
            assert message.nbytes == 0
            got = yield from task.recv()
            return (task.now, got.nbytes)

        task = vm.spawn(prog, 0)
        vm.run()
        assert task.process.value == (0.0, 0)

    def test_drains_serialise_at_receiver(self):
        """Two senders to one receiver: drains can't overlap."""
        vm = make_vm()
        # give machine 0 two peer tasks? simpler: 3-machine cluster
        net = NetworkSpec("net", gap=0.0, latency=0.0, sync_base=0.0, sync_per_member=0.0)
        spec = MachineSpec("m", cpu_rate=1e9, nic_gap=1e-6, pack_cost=0.0,
                           unpack_cost=0.0, msg_overhead=0.0)
        machines = [MachineSpec(f"m{i}", cpu_rate=1e9, nic_gap=1e-6, pack_cost=0.0,
                                unpack_cost=0.0, msg_overhead=0.0) for i in range(3)]
        vm = VirtualMachine(ClusterTopology(Cluster("lan", net, machines)), trace=True)

        def sender(task, dst):
            yield from task.send(dst, np.zeros(1000, dtype=np.uint8))

        def receiver(task):
            yield from task.recv()
            yield from task.recv()
            return task.now

        recv_task = vm.spawn(receiver, 0)
        vm.spawn(sender, 1, recv_task.tid)
        vm.spawn(sender, 2, recv_task.tid)
        vm.run()
        # Each drain takes 1 ms; they serialise: total >= 2 ms.
        assert recv_task.process.value >= 2e-3 - 1e-12

    def test_pair_multiplier_scales_transfer(self):
        vm_plain = make_vm()
        vm_scaled = make_vm()
        vm_scaled.topology.set_pair_multiplier(0, 1, 3.0)

        def run(vm):
            def sender(task, dst):
                yield from task.send(dst, np.zeros(1000, dtype=np.uint8))

            def receiver(task):
                yield from task.recv()
                return task.now

            recv_task = vm.spawn(receiver, 1)
            vm.spawn(sender, 0, recv_task.tid)
            vm.run()
            return recv_task.process.value

        assert run(vm_scaled) > run(vm_plain)


class TestRecv:
    def test_matching_by_source_and_tag(self):
        vm = make_vm()

        def sender(task, dst):
            yield from task.send(dst, "first", tag=1)
            yield from task.send(dst, "second", tag=2)

        def receiver(task):
            by_tag = yield from task.recv(tag=2)
            leftover = yield from task.recv()
            return (by_tag.payload, leftover.payload)

        recv_task = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        assert recv_task.process.value == ("second", "first")

    def test_try_recv_nonblocking(self):
        vm = make_vm()

        def prog(task):
            assert task.try_recv() is None
            delivery = yield from task.send(task.tid, "x")
            yield delivery
            message = task.try_recv()
            return message.payload if message else None

        task = vm.spawn(prog, 0)
        vm.run()
        assert task.process.value == "x"

    def test_statistics(self):
        vm = make_vm()

        def sender(task, dst):
            yield from task.send(dst, np.zeros(100, dtype=np.uint8))

        def receiver(task):
            yield from task.recv()

        recv_task = vm.spawn(receiver, 1)
        send_task = vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        assert send_task.sent_messages == 1
        assert send_task.sent_bytes == 100
        assert recv_task.received_messages == 1
        assert recv_task.received_bytes == 100

    def test_trace_has_all_phases(self):
        vm = make_vm(trace=True)

        def sender(task, dst):
            yield from task.send(dst, np.zeros(500, dtype=np.uint8))

        def receiver(task):
            yield from task.recv()

        recv_task = vm.spawn(receiver, 1)
        vm.spawn(sender, 0, recv_task.tid)
        vm.run()
        categories = vm.trace.categories()
        for phase in ("pack", "inject", "drain", "unpack"):
            assert phase in categories
