"""Tests for same-host inter-task messaging (the daemon loopback path)."""

import numpy as np
import pytest

from repro.cluster import ucf_testbed
from repro.pvm import VirtualMachine


class TestSameHostIpc:
    def _run_pair(self, nbytes):
        vm = VirtualMachine(ucf_testbed(2), trace=True)

        def receiver(task):
            message = yield from task.recv()
            return (message.nbytes, task.now)

        def sender(task, dst):
            yield from task.send(dst, np.zeros(nbytes, dtype=np.uint8))

        recv_task = vm.spawn(receiver, 0)
        vm.spawn(sender, 0, recv_task.tid)  # same host, different task
        vm.run()
        return vm, recv_task

    def test_delivers_between_tasks_on_one_host(self):
        vm, recv_task = self._run_pair(1000)
        assert recv_task.process.value[0] == 1000

    def test_no_nic_or_wire_charged(self):
        vm, _recv = self._run_pair(10_000)
        assert vm.trace.total_duration("inject") == 0.0
        assert vm.trace.total_duration("drain") == 0.0

    def test_pack_still_charged(self):
        vm, _recv = self._run_pair(10_000)
        assert vm.trace.total_duration("pack") > 0.0

    def test_faster_than_cross_host(self):
        _vm, local = self._run_pair(50_000)

        vm2 = VirtualMachine(ucf_testbed(2))

        def receiver(task):
            message = yield from task.recv()
            return (message.nbytes, task.now)

        def sender(task, dst):
            yield from task.send(dst, np.zeros(50_000, dtype=np.uint8))

        recv_task = vm2.spawn(receiver, 0)
        vm2.spawn(sender, 1, recv_task.tid)  # cross-host
        vm2.run()
        assert local.process.value[1] < recv_task.process.value[1]

    def test_self_send_still_free(self):
        vm = VirtualMachine(ucf_testbed(2))

        def prog(task):
            yield from task.send(task.tid, np.zeros(10_000, dtype=np.uint8))
            message = yield from task.recv()
            return (message.nbytes, task.now)

        task = vm.spawn(prog, 0)
        vm.run()
        assert task.process.value == (0, 0.0)
