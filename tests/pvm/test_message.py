"""Unit tests for repro.pvm.message."""

import numpy as np
import pytest

from repro.errors import PvmError
from repro.pvm import Message, payload_nbytes


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(100, dtype=np.int32)) == 400
        assert payload_nbytes(np.zeros(100, dtype=np.float64)) == 800

    def test_bytes(self):
        assert payload_nbytes(b"hello") == 5
        assert payload_nbytes(bytearray(12)) == 12

    def test_scalars(self):
        assert payload_nbytes(42) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 1
        assert payload_nbytes(np.int64(5)) == 8

    def test_string_utf8(self):
        assert payload_nbytes("abc") == 3
        assert payload_nbytes("é") == 2

    def test_containers_sum(self):
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes((np.zeros(10, dtype=np.int32), 1)) == 48

    def test_dict_keys_and_values(self):
        assert payload_nbytes({1: np.zeros(5, dtype=np.int32)}) == 8 + 20

    def test_unknown_object_flat_charge(self):
        class Strange:
            pass

        assert payload_nbytes(Strange()) == 64


class TestMessage:
    def make(self, **kwargs):
        defaults = dict(
            src=1, dst=2, tag=7, payload="x", nbytes=10, sent_at=0.0, delivered_at=1.0
        )
        defaults.update(kwargs)
        return Message(**defaults)

    def test_negative_nbytes_rejected(self):
        with pytest.raises(PvmError):
            self.make(nbytes=-1)

    def test_matches_exact(self):
        message = self.make()
        assert message.matches(1, 7)
        assert not message.matches(2, 7)
        assert not message.matches(1, 8)

    def test_matches_wildcards(self):
        message = self.make()
        assert message.matches(None, None)
        assert message.matches(None, 7)
        assert message.matches(1, None)

    def test_frozen(self):
        message = self.make()
        with pytest.raises(Exception):
            message.tag = 9  # type: ignore[misc]
