"""Unit tests for repro.pvm.vm and task spawning/routing."""

import pytest

from repro.cluster import ucf_testbed, smp_sgi_lan
from repro.errors import DeadlockError, PvmError, TaskNotFound
from repro.pvm import VirtualMachine


def idle(task):
    yield task.sleep(0.0)


class TestSpawn:
    def test_one_host_per_machine(self):
        vm = VirtualMachine(ucf_testbed(4))
        assert len(vm.hosts) == 4

    def test_spawn_by_index_and_name(self):
        vm = VirtualMachine(ucf_testbed(4))
        t0 = vm.spawn(idle, 0)
        t1 = vm.spawn(idle, "sun-classic")
        assert t0.host.machine_id == 0
        assert t1.host.spec.name == "sun-classic"

    def test_tids_unique_and_ordered(self):
        vm = VirtualMachine(ucf_testbed(3))
        tids = [vm.spawn(idle, i).tid for i in range(3)]
        assert len(set(tids)) == 3
        assert vm.tids == tuple(tids)

    def test_task_lookup(self):
        vm = VirtualMachine(ucf_testbed(2))
        task = vm.spawn(idle, 0)
        assert vm.task(task.tid) is task

    def test_unknown_tid_raises(self):
        vm = VirtualMachine(ucf_testbed(2))
        with pytest.raises(TaskNotFound):
            vm.task(999)

    def test_bad_host_raises(self):
        vm = VirtualMachine(ucf_testbed(2))
        with pytest.raises(PvmError):
            vm.spawn(idle, 5)

    def test_non_generator_function_rejected(self):
        vm = VirtualMachine(ucf_testbed(2))

        def not_gen(task):
            return 42

        with pytest.raises(PvmError, match="generator"):
            vm.spawn(not_gen, 0)

    def test_multiple_tasks_share_host_cpu(self):
        """Two tasks on one host serialise their compute."""
        vm = VirtualMachine(ucf_testbed(2))

        def cruncher(task):
            yield from task.compute(task.host.spec.cpu_rate)  # 1 second

        vm.spawn(cruncher, 0)
        vm.spawn(cruncher, 0)
        assert vm.run() == pytest.approx(2.0)


class TestRouting:
    def test_route_uses_lca_network(self):
        vm = VirtualMachine(smp_sgi_lan())
        smp0 = vm.topology.machine_id("smp-cpu0")
        smp1 = vm.topology.machine_id("smp-cpu1")
        lan0 = vm.topology.machine_id("lan-sun0")
        net, level = vm.route(vm.hosts[smp0], vm.hosts[smp1])
        assert net.name == "smp-bus" and level == 1
        net, level = vm.route(vm.hosts[smp0], vm.hosts[lan0])
        assert net.name == "campus-atm" and level == 2

    def test_self_route_rejected(self):
        vm = VirtualMachine(ucf_testbed(2))
        with pytest.raises(PvmError):
            vm.route(vm.hosts[0], vm.hosts[0])


class TestExecution:
    def test_results_collects_return_values(self):
        vm = VirtualMachine(ucf_testbed(3))

        def worker(task, value):
            yield task.sleep(0.1)
            return value * 2

        tasks = [vm.spawn(worker, i, i) for i in range(3)]
        vm.run()
        results = vm.results()
        assert results == {tasks[0].tid: 0, tasks[1].tid: 2, tasks[2].tid: 4}

    def test_recv_without_send_deadlocks(self):
        vm = VirtualMachine(ucf_testbed(2))

        def waiter(task):
            yield from task.recv()

        vm.spawn(waiter, 0)
        with pytest.raises(DeadlockError):
            vm.run()

    def test_run_until(self):
        vm = VirtualMachine(ucf_testbed(2))

        def slow(task):
            yield task.sleep(10.0)

        vm.spawn(slow, 0)
        assert vm.run(until=1.0) == 1.0
