"""Tests for schedule-space enumeration."""

import pytest

from repro.errors import CollectiveError
from repro.tuning import (
    DEFAULT_SEGMENTS,
    default_plan,
    enumerate_plans,
    level_choices,
    space_size,
)


class TestLevelChoices:
    def test_gather_choices(self):
        keys = [c.key for c in level_choices("gather")]
        assert keys == ["flat", "flat/2", "flat/4", "binomial"]

    def test_broadcast_choices(self):
        keys = [c.key for c in level_choices("broadcast")]
        assert keys == ["one", "one/2", "one/4", "two", "binomial"]

    def test_unknown_op(self):
        with pytest.raises(CollectiveError, match="op must be"):
            level_choices("scatter")

    def test_segment_one_always_included(self):
        keys = [c.key for c in level_choices("gather", segments=(8,))]
        assert keys == ["flat", "flat/8", "binomial"]

    def test_bad_segments_rejected(self):
        for bad in ((), (0,), (2, 2), (-1, 3)):
            with pytest.raises(CollectiveError, match="distinct positive"):
                level_choices("gather", segments=bad)


class TestEnumeratePlans:
    def test_counts_match_space_size(self):
        for op, base in (("gather", 4), ("broadcast", 5)):
            for k in (0, 1, 2, 3):
                plans = enumerate_plans(op, k)
                assert len(plans) == space_size(op, k) == base ** k
                assert len(set(p.key for p in plans)) == len(plans)

    def test_default_plan_sorted_first(self):
        for op in ("gather", "broadcast"):
            for k in (1, 2, 3):
                assert enumerate_plans(op, k)[0] == default_plan(op, k)

    def test_every_plan_matches_op_and_k(self):
        for plan in enumerate_plans("broadcast", 2):
            assert plan.op == "broadcast"
            assert plan.k == 2

    def test_negative_k_rejected(self):
        with pytest.raises(CollectiveError, match="k must be"):
            enumerate_plans("gather", -1)

    def test_custom_segments_shrink_the_space(self):
        plans = enumerate_plans("gather", 2, segments=(1,))
        assert len(plans) == 4  # {flat, binomial}^2
        assert DEFAULT_SEGMENTS == (1, 2, 4)
