"""Tests for the persistent decision cache."""

import json

import pytest

from repro.errors import CollectiveError
from repro.tuning.cache import (
    DecisionCache,
    TunedDecision,
    decision_key,
    default_decision_dir,
)
from repro.tuning.plan import LevelSchedule, SchedulePlan


def _decision(**overrides) -> TunedDecision:
    fields = dict(
        op="broadcast",
        topology_hash="ab" * 32,
        n=4000,
        item_bytes=8,
        root=0,
        plan=SchedulePlan(
            "broadcast", (LevelSchedule("one", 2), LevelSchedule("two"))
        ),
        predicted_time=0.5,
        simulated_time=0.75,
        default_time=1.0,
        candidates=25,
        validated=5,
    )
    fields.update(overrides)
    return TunedDecision(**fields)


class TestDecisionKey:
    def test_deterministic_hex(self):
        key = decision_key("gather", "ff" * 32, 100, 8, 3)
        assert key == decision_key("gather", "ff" * 32, 100, 8, 3)
        assert len(key) == 64
        int(key, 16)  # hex

    def test_every_field_discriminates(self):
        base = ("gather", "ff" * 32, 100, 8, 3)
        variants = [
            ("broadcast", "ff" * 32, 100, 8, 3),
            ("gather", "ee" * 32, 100, 8, 3),
            ("gather", "ff" * 32, 101, 8, 3),
            ("gather", "ff" * 32, 100, 4, 3),
            ("gather", "ff" * 32, 100, 8, 2),
        ]
        keys = {decision_key(*base)} | {decision_key(*v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_rejects_unknown_op(self):
        with pytest.raises(CollectiveError, match="op must be"):
            decision_key("scatter", "ff" * 32, 100, 8, 0)


class TestTunedDecision:
    def test_round_trip(self):
        decision = _decision()
        again = TunedDecision.from_dict(decision.to_dict())
        assert again == decision
        # through actual JSON text, as the disk cache stores it
        assert TunedDecision.from_dict(
            json.loads(json.dumps(decision.to_dict()))
        ) == decision

    def test_improvement(self):
        assert _decision().improvement == pytest.approx(0.25)
        assert _decision(simulated_time=1.0).improvement == 0.0
        assert _decision(default_time=0.0).improvement == 0.0


class TestDecisionCache:
    def test_put_get_len(self, tmp_path):
        cache = DecisionCache(tmp_path)
        decision = _decision()
        assert cache.get("broadcast", decision.topology_hash, 4000, 8, 0) is None
        cache.put(decision)
        assert len(cache) == 1
        assert cache.get("broadcast", decision.topology_hash, 4000, 8, 0) == decision

    def test_survives_process_restart(self, tmp_path):
        DecisionCache(tmp_path).put(_decision())
        fresh = DecisionCache(tmp_path)
        hit = fresh.get("broadcast", "ab" * 32, 4000, 8, 0)
        assert hit == _decision()

    def test_version_bump_orphans_old_decisions(self, tmp_path):
        """Satellite invariant: decisions tuned under one simulator
        version must never serve a newer one."""
        DecisionCache(tmp_path, version="v2-1.0").put(_decision())
        bumped = DecisionCache(tmp_path, version="v2-2.0")
        assert bumped.get("broadcast", "ab" * 32, 4000, 8, 0) is None
        assert len(bumped) == 0
        # the old entries are stale bytes prune() reclaims
        stats = bumped.stats()
        assert stats.stale_versions == ("v2-1.0",) and stats.stale_bytes > 0
        bumped.prune()
        assert DecisionCache(tmp_path, version="v2-1.0").get(
            "broadcast", "ab" * 32, 4000, 8, 0
        ) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(_decision())
        entries = list(cache.disk.dir.glob("*/*.json"))
        assert len(entries) == 1
        entries[0].write_text("{not json")
        fresh = DecisionCache(tmp_path)
        assert fresh.get("broadcast", "ab" * 32, 4000, 8, 0) is None

    def test_valid_json_wrong_shape_is_a_miss(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(_decision())
        entry = next(iter(cache.disk.dir.glob("*/*.json")))
        entry.write_text(json.dumps({"op": "broadcast"}))
        assert DecisionCache(tmp_path).get(
            "broadcast", "ab" * 32, 4000, 8, 0
        ) is None

    def test_clear_drops_memory_and_disk(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(_decision())
        cache.clear()
        assert len(cache) == 0
        assert cache.get("broadcast", "ab" * 32, 4000, 8, 0) is None

    def test_prune_clears_the_memo_too(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(_decision())
        removed, freed = cache.prune(0)
        assert removed == 1 and freed > 0
        assert cache.get("broadcast", "ab" * 32, 4000, 8, 0) is None

    def test_repr_mentions_root_and_counts(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(_decision())
        text = repr(cache)
        assert str(tmp_path) in text and "entries=1" in text

    def test_default_dir_honours_cache_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_decision_dir() == tmp_path / "decisions"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_decision_dir() == tmp_path / "xdg" / "repro" / "decisions"
