"""Tests for the declarative schedule plans."""

import pytest

from repro.errors import CollectiveError
from repro.tuning import (
    LevelSchedule,
    SchedulePlan,
    binomial_rounds,
    default_plan,
    split_segments,
)


class TestLevelSchedule:
    def test_key_formats(self):
        assert LevelSchedule("flat").key == "flat"
        assert LevelSchedule("flat", 4).key == "flat/4"
        assert LevelSchedule("binomial").key == "binomial"

    def test_validated_rejects_wrong_op_algorithm(self):
        with pytest.raises(CollectiveError, match="unknown gather"):
            LevelSchedule("two").validated("gather")
        with pytest.raises(CollectiveError, match="unknown broadcast"):
            LevelSchedule("flat").validated("broadcast")

    def test_validated_rejects_bad_segments(self):
        with pytest.raises(CollectiveError, match="positive int"):
            LevelSchedule("flat", 0).validated("gather")
        with pytest.raises(CollectiveError, match="positive int"):
            LevelSchedule("one", -2).validated("broadcast")

    def test_segmentation_only_on_segmentable_algorithms(self):
        LevelSchedule("flat", 4).validated("gather")
        LevelSchedule("one", 2).validated("broadcast")
        for algorithm, op in (("binomial", "gather"), ("two", "broadcast"),
                              ("binomial", "broadcast")):
            with pytest.raises(CollectiveError, match="segmentation"):
                LevelSchedule(algorithm, 2).validated(op)

    def test_round_trip(self):
        for schedule in (LevelSchedule("flat"), LevelSchedule("one", 8)):
            assert LevelSchedule.from_dict(schedule.to_dict()) == schedule


class TestSchedulePlan:
    def test_key_and_str(self):
        plan = SchedulePlan(
            "gather", (LevelSchedule("flat", 2), LevelSchedule("binomial"))
        )
        assert plan.key == "gather:flat/2|binomial"
        assert str(plan) == plan.key
        assert plan.k == 2

    def test_level_is_one_based(self):
        plan = SchedulePlan(
            "broadcast", (LevelSchedule("one"), LevelSchedule("two"))
        )
        assert plan.level(1).algorithm == "one"
        assert plan.level(2).algorithm == "two"
        for bad in (0, 3, -1):
            with pytest.raises(CollectiveError, match="out of range"):
                plan.level(bad)

    def test_rejects_unknown_op(self):
        with pytest.raises(CollectiveError, match="op must be"):
            SchedulePlan("scatter", (LevelSchedule("flat"),))

    def test_validates_levels_against_op(self):
        with pytest.raises(CollectiveError, match="unknown gather"):
            SchedulePlan("gather", (LevelSchedule("two"),))

    def test_round_trip(self):
        plan = SchedulePlan(
            "broadcast",
            (LevelSchedule("one", 4), LevelSchedule("binomial"),
             LevelSchedule("two")),
        )
        assert SchedulePlan.from_dict(plan.to_dict()) == plan

    def test_default_plan_is_default(self):
        for op in ("gather", "broadcast"):
            for k in (1, 2, 3):
                plan = default_plan(op, k)
                assert plan.k == k
                assert plan.is_default
        assert default_plan("gather", 2).key == "gather:flat|flat"
        assert default_plan("broadcast", 2).key == "broadcast:two|two"
        tweaked = SchedulePlan(
            "gather", (LevelSchedule("flat"), LevelSchedule("binomial"))
        )
        assert not tweaked.is_default


class TestHelpers:
    def test_split_segments_sums_and_shape(self):
        assert split_segments(10, 4) == [3, 3, 2, 2]
        assert split_segments(4000, 3) == [1334, 1333, 1333]
        assert split_segments(2, 4) == [1, 1, 0, 0]
        for total, segments in ((0, 1), (7, 2), (4000, 7)):
            chunks = split_segments(total, segments)
            assert sum(chunks) == total
            assert len(chunks) == segments
            assert max(chunks) - min(chunks) <= 1

    def test_binomial_rounds(self):
        assert [binomial_rounds(c) for c in (0, 1, 2, 3, 4, 5, 8, 9)] == [
            0, 0, 1, 2, 2, 3, 3, 4,
        ]
