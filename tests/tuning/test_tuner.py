"""Tests for the tuning pipeline: enumerate, price, validate, memoize."""

import pytest

from repro.cluster import topology_hash
from repro.cluster.presets import deep_hierarchy, two_lans
from repro.collectives import RootPolicy, run_broadcast, run_gather
from repro.errors import CollectiveError
from repro.tuning.cache import DecisionCache
from repro.tuning.tuner import _resolve_root_fast, tune, tuned_plan


@pytest.fixture
def cache(tmp_path):
    return DecisionCache(tmp_path)


@pytest.fixture
def topology():
    return deep_hierarchy(2, 4)


class TestTune:
    def test_cold_tune_returns_a_validated_decision(self, topology, cache):
        decision = tune(topology, "broadcast", 4000, cache=cache)
        assert decision.op == "broadcast"
        assert decision.topology_hash == topology_hash(topology)
        assert decision.plan.k == 2
        assert decision.candidates == 25  # 5^2 broadcast space
        assert decision.validated >= 1
        assert decision.simulated_time > 0

    def test_tuned_never_slower_than_default(self, cache):
        """The default plan is always in the validated shortlist and
        the winner is picked on simulated time."""
        for op in ("gather", "broadcast"):
            for n in (64, 4000):
                decision = tune(
                    deep_hierarchy(2, 3), op, n, cache=cache, force=True
                )
                assert decision.simulated_time <= decision.default_time

    def test_decision_replays_exactly_in_the_simulator(self, topology, cache):
        decision = tune(topology, "gather", 4000, cache=cache)
        outcome = run_gather(
            topology, 4000, root=decision.root, plan=decision.plan
        )
        assert outcome.time == decision.simulated_time
        decision = tune(topology, "broadcast", 4000, cache=cache)
        outcome = run_broadcast(
            topology, 4000, root=decision.root, plan=decision.plan
        )
        assert outcome.time == decision.simulated_time

    def test_warm_hit_skips_the_pipeline(self, topology, cache, monkeypatch):
        decision = tune(topology, "broadcast", 4000, cache=cache)

        def boom(*args, **kwargs):  # pragma: no cover
            raise AssertionError("warm path must not simulate")

        monkeypatch.setattr("repro.tuning.tuner._simulate", boom)
        assert tune(topology, "broadcast", 4000, cache=cache) == decision

    def test_cold_and_warm_decisions_byte_identical(self, topology, tmp_path):
        """Satellite invariant: a fresh process resolving from disk gets
        the exact decision the cold run stored."""
        cold = tune(topology, "gather", 4000, cache=DecisionCache(tmp_path))
        warm = tune(topology, "gather", 4000, cache=DecisionCache(tmp_path))
        assert warm == cold
        assert warm.to_dict() == cold.to_dict()

    def test_force_retunes_on_a_hit(self, topology, cache, monkeypatch):
        tune(topology, "broadcast", 4000, cache=cache)
        calls = []
        import repro.tuning.tuner as tuner_module

        original = tuner_module._simulate

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(tuner_module, "_simulate", counting)
        tune(topology, "broadcast", 4000, cache=cache, force=True)
        assert calls

    def test_topology_mutation_changes_the_key(self, cache):
        """Satellite invariant: a mutated machine never reuses the old
        machine's decision."""
        a = tune(two_lans(3), "broadcast", 4000, cache=cache)
        mutated = two_lans(3, nic_slowdown=1.5)
        b = tune(mutated, "broadcast", 4000, cache=cache)
        assert a.topology_hash != b.topology_hash
        assert len(cache) == 2

    def test_root_policy_and_pid_share_one_entry(self, topology, cache):
        by_policy = tune(
            topology, "gather", 2000, root=RootPolicy.FASTEST, cache=cache
        )
        by_pid = tune(
            topology, "gather", 2000, root=by_policy.root, cache=cache
        )
        assert by_pid == by_policy
        assert len(cache) == 1

    def test_input_validation(self, topology, cache):
        with pytest.raises(CollectiveError, match="op must be"):
            tune(topology, "scatter", 100, cache=cache)
        with pytest.raises(CollectiveError, match="n must be"):
            tune(topology, "gather", -1, cache=cache)
        with pytest.raises(CollectiveError, match="shortlist"):
            tune(topology, "gather", 100, shortlist=0, cache=cache)

    def test_tuned_plan_returns_the_winning_plan(self, topology, cache):
        decision = tune(topology, "broadcast", 4000, cache=cache)
        assert tuned_plan(
            topology, "broadcast", 4000, cache=cache
        ) == decision.plan


class TestResolveRootFast:
    """The warm path resolves roots without building a runtime; it must
    agree with the runtime's own resolution on every spelling."""

    def test_matches_runtime_resolution(self, topology):
        from repro.collectives.base import make_runtime
        from repro.collectives.schedules import resolve_root

        runtime = make_runtime(topology)
        for spec in (None, RootPolicy.FASTEST, RootPolicy.SLOWEST, 0, 5):
            assert _resolve_root_fast(topology, spec) == resolve_root(
                runtime, spec
            )

    def test_rejects_bad_roots(self, topology):
        for bad in (True, -1, 10**6, "fastest"):
            with pytest.raises(CollectiveError):
                _resolve_root_fast(topology, bad)
