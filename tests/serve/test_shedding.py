"""Admission-control shedding edge cases (the degenerate policy limits)."""

import dataclasses

from repro.obs import observe
from repro.serve import default_config, run_service


def _with_policy(config, **kwargs):
    return dataclasses.replace(
        config, policy=dataclasses.replace(config.policy, **kwargs)
    )


def _with_rate(config, rate):
    return dataclasses.replace(
        config, arrival=dataclasses.replace(config.arrival, rate=rate)
    )


class TestQueueLimitZero:
    def test_sheds_every_arrival(self):
        config = _with_policy(default_config(), queue_limit=0)
        report = run_service(config)
        assert report.offered > 0
        assert report.shed == report.offered
        assert report.admitted == 0
        assert report.completed == 0
        assert report.goodput == 0.0

    def test_distinct_from_unbounded(self):
        base = default_config()
        everything = run_service(_with_policy(base, queue_limit=0))
        nothing = run_service(_with_policy(base, queue_limit=None))
        assert everything.shed == everything.offered
        assert nothing.shed == 0
        assert nothing.completed == nothing.offered


class TestSingleBatchEquivalence:
    def test_max_batch_one_never_batches(self):
        config = _with_policy(default_config(), max_batch=1, queue_limit=None)
        report = run_service(config)
        assert report.batches == report.completed

    def test_equivalent_under_vanishing_load(self):
        # At a trickle the queue never holds two requests, so the
        # batching knob cannot matter: max_batch=1 and max_batch=4
        # must produce bit-identical sessions.
        base = _with_rate(
            dataclasses.replace(default_config(), duration=10.0), 0.5
        )
        single = run_service(_with_policy(base, max_batch=1))
        batched = run_service(_with_policy(base, max_batch=4))
        assert single == batched
        assert single.batches == single.completed


class TestShedObservability:
    def test_shed_counts_once_and_leaves_no_span(self):
        config = _with_policy(default_config(), queue_limit=0)
        with observe(spans=True) as observation:
            report = run_service(config)
        metrics = observation.metrics
        # Exactly one repro_serve_shed_total increment per shed request…
        assert metrics.value("repro_serve_shed_total") == float(report.shed)
        assert report.shed == report.offered
        # …every arrival still counted at the front door…
        assert metrics.counter_sum("repro_serve_requests_total") == float(
            report.offered
        )
        # …and no request span: serve spans record completions only
        # (the cost-model prewarm's kernel runs have their own groups).
        serve_spans = [
            span for span in observation.tracer.spans if span.group == "serve"
        ]
        assert serve_spans == []

    def test_partial_shedding_counts_match(self):
        config = _with_rate(
            _with_policy(default_config(), queue_limit=1), 64.0
        )
        with observe() as observation:
            report = run_service(config)
        assert 0 < report.shed < report.offered
        assert observation.metrics.value("repro_serve_shed_total") == float(
            report.shed
        )
