"""The serving determinism contract.

Two properties the experiments lean on, asserted with exact float
equality (never ``approx``):

* one config seed -> one arrival sequence and one latency sequence,
  bit-identical whether the kernel costs were prewarmed serially or
  across a worker pool;
* at vanishing load with batching off, the service adds nothing: each
  request's latency IS the batch-runner makespan of its stage chain on
  the best slice.
"""

import dataclasses

from repro.perf import evaluate, sweep
from repro.perf.job import APP_OPS, SimJob
from repro.serve import (
    StageCostModel,
    carve_slices,
    default_config,
    generate_arrivals,
    run_service,
)
from repro.serve.service import resolve_cluster


class TestJobsBitIdentity:
    def test_latencies_identical_serial_vs_pool(self):
        config = default_config(seed=11, duration=15.0, rate=8.0)
        with sweep(jobs=1):
            serial = run_service(config)
        with sweep(jobs=4):
            pooled = run_service(config)
        assert serial.latencies == pooled.latencies
        assert serial.makespan == pooled.makespan
        assert serial.goodput == pooled.goodput
        assert serial.slice_completed == pooled.slice_completed

    def test_arrivals_identical_serial_vs_pool(self):
        # Arrival generation never touches the executor, but the
        # contract is end-to-end: same config -> same sequence, in or
        # out of any sweep block.
        config = default_config(seed=11, duration=15.0, rate=8.0)
        bare = generate_arrivals(config)
        with sweep(jobs=4):
            pooled = generate_arrivals(config)
        assert bare == pooled

    def test_experiment_report_identical_serial_vs_pool(self):
        from repro.experiments.serving import serving_curves

        with sweep(jobs=1):
            serial = serving_curves(rates=(4.0, 16.0), seed=0)
        with sweep(jobs=4):
            pooled = serving_curves(rates=(4.0, 16.0), seed=0)
        assert serial.series == pooled.series


class TestVanishingLoadDegeneration:
    def test_latency_is_exactly_the_best_slice_makespan(self):
        # ~4 arrivals spaced seconds apart, batching off: every request
        # runs alone, so its latency must equal the evaluate()'d stage
        # chain on the cheapest slice — exactly, not approximately.
        config = default_config(seed=0, duration=20.0, rate=0.2)
        config = dataclasses.replace(
            config, policy=dataclasses.replace(config.policy, max_batch=1)
        )
        report = run_service(config)
        assert report.completed == report.offered > 0

        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )

        def chain_makespan(kind_index: int, slice_index: int) -> float:
            kind = config.workload[kind_index]
            jobs = []
            for stage in kind.stages:
                n = kind.stage_n(stage, 1)
                topology = slices[slice_index].topology
                if stage.op in APP_OPS:
                    jobs.append(SimJob.app(stage.op, topology, n, seed=config.seed))
                else:
                    jobs.append(
                        SimJob.collective(stage.op, topology, n, seed=config.seed)
                    )
            return sum(result.time for result in evaluate(jobs))

        arrivals = generate_arrivals(config)
        for arrival, latency in zip(arrivals, report.latencies):
            expected = min(
                chain_makespan(arrival.kind, j) for j in range(len(slices))
            )
            assert latency == expected

    def test_prewarmed_model_agrees_with_direct_evaluate(self):
        config = default_config(seed=0, duration=10.0)
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        model.prewarm()
        for key in model.universe():
            (direct,) = evaluate([model.job(key)])
            assert model.stage_cost(key) == direct.time
