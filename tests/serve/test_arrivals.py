"""Tests for seeded open-loop arrival generation."""

import dataclasses
import math

from repro.serve import default_config, generate_arrivals, offered_rate
from repro.serve.arrivals import kind_counts


def _diurnal(seed=0, duration=40.0, rate=5.0, amplitude=0.8, period=10.0):
    config = default_config(seed=seed, duration=duration)
    return dataclasses.replace(
        config,
        arrival=dataclasses.replace(
            config.arrival,
            process="diurnal", rate=rate, amplitude=amplitude, period=period,
        ),
    )


class TestPoissonArrivals:
    def test_bit_identical_across_calls(self):
        config = default_config(seed=3, duration=30.0)
        assert generate_arrivals(config) == generate_arrivals(config)

    def test_seed_changes_sequence(self):
        a = generate_arrivals(default_config(seed=0, duration=30.0))
        b = generate_arrivals(default_config(seed=1, duration=30.0))
        assert a != b

    def test_sorted_and_bounded(self):
        arrivals = generate_arrivals(default_config(seed=0, duration=30.0))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0 < t < 30.0 for t in times)
        assert [a.request_id for a in arrivals] == list(range(len(arrivals)))

    def test_rate_roughly_respected(self):
        config = default_config(seed=0, duration=200.0, rate=4.0)
        arrivals = generate_arrivals(config)
        realised = len(arrivals) / config.duration
        assert abs(realised - offered_rate(config)) < 1.0

    def test_kind_mix_follows_weights(self):
        # Weights 3:2:1 over a long window — interactive dominates.
        config = default_config(seed=0, duration=500.0, rate=4.0)
        counts = kind_counts(config, generate_arrivals(config))
        assert counts["interactive"] > counts["analytics"] > counts["sort"]


class TestDiurnalArrivals:
    def test_bit_identical_across_calls(self):
        config = _diurnal(seed=7)
        assert generate_arrivals(config) == generate_arrivals(config)

    def test_thinning_never_exceeds_duration(self):
        arrivals = generate_arrivals(_diurnal())
        assert all(a.time < 40.0 for a in arrivals)

    def test_peak_half_busier_than_trough_half(self):
        # sin > 0 on the first half of each period: arrivals cluster there.
        config = _diurnal(seed=0, duration=400.0, amplitude=0.9, period=10.0)
        arrivals = generate_arrivals(config)
        peak = sum(
            1 for a in arrivals if math.sin(2 * math.pi * a.time / 10.0) > 0
        )
        trough = len(arrivals) - peak
        assert peak > 1.5 * trough

    def test_mean_rate_matches_base_rate(self):
        # The modulation integrates to ~zero over whole periods.
        config = _diurnal(seed=0, duration=400.0, rate=5.0)
        arrivals = generate_arrivals(config)
        assert abs(len(arrivals) / 400.0 - 5.0) < 0.5
