"""Churn-tolerant serving: re-dispatch, degraded slices, epoch re-planning."""

import dataclasses

import pytest

from repro.dynamics import (
    DynamicPlan,
    MachineLeave,
    churn_plan,
    membership_epochs,
)
from repro.obs import observe
from repro.serve import default_config, restrict_topology, run_service, slice_variants
from repro.serve.arrivals import generate_arrivals
from repro.serve.placement import carve_slices
from repro.serve.service import resolve_cluster


def _with_policy(config, **kwargs):
    return dataclasses.replace(
        config, policy=dataclasses.replace(config.policy, **kwargs)
    )


def _short_config(**kwargs):
    config = dataclasses.replace(default_config(), duration=5.0)
    return _with_policy(config, **kwargs) if kwargs else config


def _interrupting_plan(config, duration=None):
    """Leave events on every machine just after the first arrival.

    Placing the boundary inside the first in-flight batch guarantees
    the interrupt/re-dispatch path fires (request costs are a few ms,
    so a boundary at t0 + 1ms lands mid-request).
    """
    t0 = generate_arrivals(config)[0].time
    topology = resolve_cluster(config.cluster)
    return DynamicPlan([
        MachineLeave(m.name, start=t0 + 0.001, duration=duration or 1.0)
        for m in topology.machines
    ])


class TestRestrictTopology:
    def test_drops_absent_machines(self):
        topology = resolve_cluster("two-lans:3")
        present = {m.name for m in topology.machines} - {topology.machines[0].name}
        restricted = restrict_topology(topology, present)
        assert restricted.num_machines == topology.num_machines - 1
        assert topology.machines[0].name not in {
            m.name for m in restricted.machines
        }

    def test_nothing_left_returns_none(self):
        topology = resolve_cluster("two-lans:3")
        assert restrict_topology(topology, frozenset()) is None

    def test_full_presence_keeps_structure(self):
        topology = resolve_cluster("two-lans:3")
        present = frozenset(m.name for m in topology.machines)
        restricted = restrict_topology(topology, present)
        assert [m.name for m in restricted.machines] == [
            m.name for m in topology.machines
        ]


class TestSliceVariants:
    def test_static_epochs_add_no_variants(self):
        topology = resolve_cluster("two-lans:3")
        base = carve_slices(topology, "subtrees")
        epochs = membership_epochs(DynamicPlan.empty(), topology)
        expanded, live = slice_variants(base, epochs)
        assert len(expanded) == len(base)
        assert all(
            live[(j, 0)] == j for j in range(len(base))
        )

    def test_degraded_variants_deduplicate(self):
        topology = resolve_cluster("two-lans:3")
        base = carve_slices(topology, "subtrees")
        victim = base[0].topology.machines[0].name
        # Two distinct outages of the same machine: same surviving set,
        # so both epochs must map to one shared degraded variant.
        plan = DynamicPlan([
            MachineLeave(victim, start=1.0, duration=1.0),
            MachineLeave(victim, start=3.0, duration=1.0),
        ])
        epochs = membership_epochs(plan, topology)
        expanded, live = slice_variants(base, epochs)
        assert len(expanded) == len(base) + 1
        degraded = [
            live[(0, e.index)] for e in epochs if victim not in e.present
        ]
        assert len(set(degraded)) == 1
        assert degraded[0] == len(base)
        assert "~deg" in expanded[len(base)].name

    def test_fully_offline_slice_maps_to_none(self):
        topology = resolve_cluster("two-lans:3")
        base = carve_slices(topology, "subtrees")
        members = [m.name for m in base[0].topology.machines]
        plan = DynamicPlan([
            MachineLeave(name, start=1.0, duration=1.0) for name in members
        ])
        epochs = membership_epochs(plan, topology)
        expanded, live = slice_variants(base, epochs)
        dark = [e for e in epochs if not set(members) & e.present]
        assert dark
        assert all(live[(0, e.index)] is None for e in dark)


class TestChurnService:
    def test_dynamic_session_is_deterministic(self):
        config = _short_config()
        names = [
            m.name for m in resolve_cluster(config.cluster).machines
        ]
        plan = churn_plan(names, rate=1.0, duration=config.duration, seed=3)
        a = run_service(config, dynamics=plan)
        b = run_service(config, dynamics=plan)
        assert a == b

    def test_interrupt_redispatches_and_completes(self):
        config = _short_config()
        plan = _interrupting_plan(config)
        report = run_service(config, dynamics=plan)
        assert report.redispatched >= 1
        assert report.epochs > 1
        assert report.completed + report.shed + report.degraded_shed == (
            report.offered
        )

    def test_exhausted_retries_shed_degraded(self):
        config = _short_config(max_redispatch=0)
        plan = _interrupting_plan(config)
        report = run_service(config, dynamics=plan)
        assert report.degraded_shed >= 1

    def test_offline_forever_sheds_backlog(self):
        config = _short_config()
        topology = resolve_cluster(config.cluster)
        # Every machine gone before arrivals start, never to return:
        # nothing can complete, everything admitted must be shed.
        plan = DynamicPlan([
            MachineLeave(m.name, start=1e-9) for m in topology.machines
        ])
        report = run_service(config, dynamics=plan)
        assert report.completed == 0
        assert report.degraded_shed == report.admitted > 0

    def test_dynamic_metrics_and_epoch_spans(self):
        config = _short_config()
        plan = _interrupting_plan(config)
        with observe(spans=True) as observation:
            report = run_service(config, dynamics=plan)
        metrics = observation.metrics
        assert metrics.gauges[("repro_serve_epochs", ())] == float(report.epochs)
        assert metrics.value("repro_serve_redispatched_total") == float(
            report.redispatched
        )
        epoch_spans = [
            span for span in observation.tracer.spans
            if span.actor == "membership"
        ]
        assert len(epoch_spans) >= 1
        assert epoch_spans[0].start == 0.0

    def test_degraded_completions_counted(self):
        config = _short_config()
        topology = resolve_cluster(config.cluster)
        victim = topology.machines[0].name
        # One machine out for the whole session: its slice serves every
        # request on the degraded variant.
        plan = DynamicPlan(MachineLeave(victim, start=1e-9))
        with observe() as observation:
            report = run_service(config, dynamics=plan)
        assert report.degraded > 0
        assert observation.metrics.value(
            "repro_serve_degraded_requests_total"
        ) == float(report.degraded)

    def test_report_renders_dynamics_line(self):
        config = _short_config()
        plan = _interrupting_plan(config)
        report = run_service(config, dynamics=plan)
        assert "dynamics" in report.render()
        jsonable = report.to_jsonable()
        assert jsonable["epochs"] == report.epochs
        assert jsonable["redispatched"] == report.redispatched

    def test_static_report_hides_dynamics_line(self):
        report = run_service(_short_config())
        assert "dynamics" not in report.render()
        assert report.epochs == 1


class TestSharedModelGuard:
    def test_dynamic_slice_table_mismatch_rejected(self):
        from repro.errors import ServeError
        from repro.serve import StageCostModel, serve_slices

        config = _short_config()
        static_slices, _ = serve_slices(config)
        model = StageCostModel(config, static_slices)
        # A *partial* outage expands the slice table with a degraded
        # variant the static model has never priced.
        victim = resolve_cluster(config.cluster).machines[0].name
        plan = DynamicPlan(MachineLeave(victim, start=1.0, duration=1.0))
        with pytest.raises(ServeError):
            run_service(config, dynamics=plan, costs=model)

    def test_matching_dynamic_model_is_accepted(self):
        from repro.serve import StageCostModel, serve_slices

        config = _short_config()
        victim = resolve_cluster(config.cluster).machines[0].name
        plan = DynamicPlan(MachineLeave(victim, start=1.0, duration=1.0))
        expanded, _ = serve_slices(config, plan)
        model = StageCostModel(config, expanded)
        shared = run_service(config, dynamics=plan, costs=model)
        own = run_service(config, dynamics=plan)
        assert shared == own
