"""Tests for the declarative ServiceConfig layer."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    REQUEST_TEMPLATES,
    STAGE_OPS,
    ArrivalSpec,
    PolicySpec,
    RequestKind,
    ServiceConfig,
    StageSpec,
    default_config,
)


class TestStageSpec:
    def test_known_ops(self):
        for op in STAGE_OPS:
            assert StageSpec(op).op == op

    def test_unknown_op_rejected(self):
        with pytest.raises(ServeError, match="unknown stage op"):
            StageSpec("fft")

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ServeError, match="scale"):
            StageSpec("gather", scale=0.0)


class TestRequestKind:
    def test_templates_all_build(self):
        for template in REQUEST_TEMPLATES:
            kind = RequestKind.from_dict({"template": template, "n": 100})
            assert kind.name == template
            assert kind.stages

    def test_template_name_override(self):
        kind = RequestKind.from_dict(
            {"template": "sort", "name": "bigsort", "n": 100}
        )
        assert kind.name == "bigsort"

    def test_explicit_stages(self):
        kind = RequestKind.from_dict({
            "name": "custom",
            "stages": ["broadcast", {"op": "histogram", "scale": 0.5}],
            "n": 1000,
        })
        assert kind.stages == (
            StageSpec("broadcast", 1.0), StageSpec("histogram", 0.5),
        )

    def test_stage_n_scales_and_batches(self):
        kind = RequestKind.from_dict(
            {"name": "k", "stages": [{"op": "gather", "scale": 0.25}], "n": 1000}
        )
        stage = kind.stages[0]
        assert kind.stage_n(stage) == 250
        assert kind.stage_n(stage, batch=4) == 1000
        # Tiny scaled sizes never collapse below one item.
        tiny = RequestKind.from_dict(
            {"name": "t", "stages": [{"op": "gather", "scale": 0.001}], "n": 10}
        )
        assert tiny.stage_n(tiny.stages[0]) == 1

    def test_unknown_template_rejected(self):
        with pytest.raises(ServeError, match="unknown request template"):
            RequestKind.from_dict({"template": "video", "n": 10})

    def test_needs_template_or_stages(self):
        with pytest.raises(ServeError, match="'template' or 'stages'"):
            RequestKind.from_dict({"name": "x", "n": 10})

    def test_needs_problem_size(self):
        with pytest.raises(ServeError, match="problem size"):
            RequestKind.from_dict({"template": "sort"})


class TestArrivalSpec:
    def test_poisson_defaults(self):
        spec = ArrivalSpec()
        assert spec.process == "poisson"

    def test_unknown_process_rejected(self):
        with pytest.raises(ServeError, match="unknown arrival process"):
            ArrivalSpec(process="bursty")

    def test_diurnal_amplitude_bounds(self):
        assert ArrivalSpec(process="diurnal", amplitude=0.0).amplitude == 0.0
        # The spec itself only rejects nonsense; degenerate curves are
        # caught eagerly by ServiceConfig (trough-rate validation).
        assert ArrivalSpec(process="diurnal", amplitude=1.5).amplitude == 1.5
        with pytest.raises(ServeError, match="amplitude"):
            ArrivalSpec(process="diurnal", amplitude=-0.1)

    def test_diurnal_trough_rate(self):
        assert ArrivalSpec(process="diurnal", rate=4.0, amplitude=0.5).trough_rate == 2.0
        assert ArrivalSpec(process="poisson", rate=4.0).trough_rate == 4.0

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ServeError, match="rate"):
            ArrivalSpec(rate=0.0)


class TestPolicySpec:
    def test_defaults_valid(self):
        spec = PolicySpec()
        assert spec.queue_limit == 64
        assert spec.placement == "subtrees"

    @pytest.mark.parametrize("field,value,match", [
        ("queue_limit", -1, "queue_limit"),
        ("max_batch", 0, "max_batch"),
        ("placement", "spread", "placement"),
        ("schedule", "greedy", "schedule"),
        ("slo", 0.0, "slo"),
    ])
    def test_invalid_values_rejected(self, field, value, match):
        with pytest.raises(ServeError, match=match):
            PolicySpec(**{field: value})


class TestServiceConfig:
    def test_default_config_builds(self):
        config = default_config()
        assert config.cluster == "two-lans:3"
        assert len(config.workload) == 3

    def test_json_round_trip(self):
        config = default_config(seed=5, duration=12.0)
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt == config
        import json

        rebuilt2 = ServiceConfig.from_dict(json.loads(config.to_json()))
        assert rebuilt2 == config

    def test_from_file(self, tmp_path):
        path = tmp_path / "svc.json"
        config = default_config(seed=2)
        path.write_text(config.to_json())
        assert ServiceConfig.from_file(path) == config

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(ServeError, match="cannot read"):
            ServiceConfig.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ServeError, match="not valid JSON"):
            ServiceConfig.from_file(bad)
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ServeError, match="JSON object"):
            ServiceConfig.from_file(array)

    def test_duplicate_kind_names_rejected(self):
        with pytest.raises(ServeError, match="duplicate"):
            ServiceConfig(
                cluster="two-lans",
                arrival=ArrivalSpec(),
                workload=(
                    RequestKind.from_dict({"template": "sort", "n": 10}),
                    RequestKind.from_dict({"template": "sort", "n": 20}),
                ),
            )

    def test_needs_cluster_and_workload(self):
        with pytest.raises(ServeError, match="'cluster'"):
            ServiceConfig.from_dict({"workload": []})
        with pytest.raises(ServeError, match="'workload'"):
            ServiceConfig.from_dict({"cluster": "two-lans"})
