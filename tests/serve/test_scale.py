"""Serving at 10^3 leaves (CI bench job: ``pytest -m scale``).

Requests here are gather/broadcast-only (the ``fanout`` template) so
every stage simulation takes the macro-event fast path; the apps are
not ``@macro_safe`` and would thrash at this machine size.
"""

import time

import pytest

from repro.serve import (
    ArrivalSpec,
    PolicySpec,
    RequestKind,
    ServiceConfig,
    carve_slices,
    run_service,
)
from repro.serve.service import resolve_cluster

pytestmark = pytest.mark.scale


def _big_config(seed: int = 0) -> ServiceConfig:
    return ServiceConfig(
        cluster="multi_rack:racks=25,hosts_per_rack=40",  # 1000 leaves
        arrival=ArrivalSpec(process="poisson", rate=3.0),
        workload=(
            RequestKind.from_dict(
                {"template": "fanout", "n": 100_000, "weight": 2}
            ),
            RequestKind.from_dict(
                {"template": "fanout", "name": "smallfan", "n": 20_000}
            ),
        ),
        policy=PolicySpec(queue_limit=64, max_batch=2),
        duration=10.0,
        seed=seed,
    )


class TestThousandLeafServing:
    def test_session_runs_and_spreads_load(self):
        config = _big_config()
        topology = resolve_cluster(config.cluster)
        assert topology.num_machines == 1000
        slices = carve_slices(topology, config.policy.placement)
        assert len(slices) == 25

        started = time.perf_counter()
        report = run_service(config)
        elapsed = time.perf_counter() - started

        assert report.completed == report.offered > 0
        assert report.shed == 0
        assert sum(report.slice_completed) == report.completed
        # 25 idle racks vs ~30 requests: load spreads beyond one slice.
        assert sum(1 for count in report.slice_completed if count) > 1
        # Macro fast path: the whole session (universe prewarm included)
        # stays interactive even at 10^3 machines.
        assert elapsed < 120.0

    def test_bit_identical_across_repeats(self):
        first = run_service(_big_config(seed=5))
        second = run_service(_big_config(seed=5))
        assert first.latencies == second.latencies
        assert first.slice_completed == second.slice_completed
