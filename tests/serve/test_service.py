"""Tests for slicing, the cost model, and the serving loop itself."""

import dataclasses

import pytest

from repro.errors import ServeError
from repro.obs import observe
from repro.serve import (
    StageCostModel,
    carve_slices,
    default_config,
    percentile,
    pick_slice,
    run_service,
)
from repro.serve.service import resolve_cluster


def _with_policy(config, **kwargs):
    return dataclasses.replace(
        config, policy=dataclasses.replace(config.policy, **kwargs)
    )


def _with_rate(config, rate):
    return dataclasses.replace(
        config, arrival=dataclasses.replace(config.arrival, rate=rate)
    )


class TestPlacement:
    def test_two_lans_carves_two_slices(self):
        topology = resolve_cluster("two-lans:3")
        slices = carve_slices(topology, "subtrees")
        assert len(slices) == 2
        assert all(s.topology.num_machines == 3 for s in slices)
        assert all(s.capacity > 0 for s in slices)

    def test_whole_placement_is_one_slice(self):
        topology = resolve_cluster("two-lans:3")
        (whole,) = carve_slices(topology, "whole")
        assert whole.topology.num_machines == 6

    def test_flat_cluster_degenerates_to_whole(self):
        # flat's root holds bare machines -> >= 2 children, each its
        # own singleton slice; testbed with one LAN child degenerates.
        topology = resolve_cluster("flat:4")
        slices = carve_slices(topology, "subtrees")
        assert len(slices) in (1, 4)

    def test_pick_slice_prefers_cheapest_then_capacity(self):
        topology = resolve_cluster("two-lans:3")
        slices = carve_slices(topology, "subtrees")
        assert pick_slice([0, 1], [1.0, 2.0], slices) == 0
        assert pick_slice([0, 1], [2.0, 1.0], slices) == 1
        # Equal costs: higher capacity wins, then lower index.
        tie = pick_slice([0, 1], [1.0, 1.0], slices)
        best = max(range(2), key=lambda j: (slices[j].capacity, -j))
        assert tie == best

    def test_pick_slice_needs_an_idle_slice(self):
        topology = resolve_cluster("two-lans:3")
        slices = carve_slices(topology, "subtrees")
        with pytest.raises(ServeError, match="idle"):
            pick_slice([], [1.0, 1.0], slices)


class TestStageCostModel:
    def test_universe_covers_all_shapes(self):
        config = default_config()
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        stages = sum(len(kind.stages) for kind in config.workload)
        expected = stages * len(slices) * config.policy.max_batch
        assert len(model.universe()) == expected
        assert len(model.jobs()) == expected

    def test_prewarm_fills_every_key_and_is_idempotent(self):
        config = default_config()
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        first = model.prewarm()
        assert first == len(model.universe())
        assert model.prewarm() == 0
        for key in model.universe():
            assert model.stage_cost(key) > 0

    def test_batching_costs_less_than_separate_requests(self):
        # One batch of 4 simulates fewer supersteps than 4 singletons.
        config = default_config()
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        model.prewarm()
        one = model.request_cost(0, 0, 1)
        four = model.request_cost(0, 0, 4)
        assert one < four < 4 * one


class TestRunService:
    def test_session_completes_everything_at_low_load(self):
        report = run_service(default_config(seed=0, duration=20.0, rate=1.0))
        assert report.offered > 0
        assert report.completed == report.admitted == report.offered
        assert report.shed == 0
        assert len(report.latencies) == report.completed
        assert report.latency_p99 >= report.latency_p50 > 0

    def test_overload_sheds_and_keeps_queue_bounded(self):
        config = _with_policy(
            _with_rate(default_config(seed=0, duration=20.0), 500.0),
            queue_limit=8,
        )
        report = run_service(config)
        assert report.shed > 0
        assert report.queue_depth_max <= 8
        assert report.completed + report.shed <= report.offered

    def test_unbounded_queue_never_sheds(self):
        config = _with_policy(
            _with_rate(default_config(seed=0, duration=10.0), 100.0),
            queue_limit=None,
        )
        report = run_service(config)
        assert report.shed == 0
        assert report.completed == report.offered

    def test_batching_reduces_batch_count(self):
        # Load far past saturation so the queue actually holds
        # same-kind neighbours for the dispatcher to coalesce.
        base = _with_rate(default_config(seed=0, duration=10.0), 400.0)
        batched = run_service(_with_policy(base, max_batch=4, queue_limit=None))
        single = run_service(_with_policy(base, max_batch=1, queue_limit=None))
        assert batched.completed == single.completed
        assert batched.batches < single.batches
        assert batched.makespan < single.makespan

    def test_both_slices_absorb_work_under_load(self):
        report = run_service(default_config(seed=0, duration=20.0, rate=30.0))
        assert all(count > 0 for count in report.slice_completed)
        assert sum(report.slice_completed) == report.completed

    def test_slo_goodput_counts_conformant_only(self):
        config = default_config(seed=0, duration=20.0, rate=2.0)
        with_slo = _with_policy(config, slo=1e-6)  # nothing conforms
        assert run_service(with_slo).goodput == 0.0
        without = run_service(config)
        assert without.goodput == pytest.approx(
            without.completed / config.duration
        )

    def test_shared_cost_model_rejects_mismatched_config(self):
        config = default_config(seed=0, duration=10.0)
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        other = default_config(seed=1, duration=10.0)
        with pytest.raises(ServeError, match="different session shape"):
            run_service(other, costs=model)

    def test_shared_cost_model_allows_arrival_changes(self):
        config = default_config(seed=0, duration=10.0)
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        model = StageCostModel(config, slices)
        report = run_service(_with_rate(config, 8.0), costs=model)
        assert report.completed > 0

    def test_report_renders_and_dumps(self):
        report = run_service(default_config(seed=0, duration=10.0))
        text = report.render()
        assert "serving session on two-lans:3" in text
        assert "goodput" in text
        data = report.to_jsonable()
        assert data["completed"] == report.completed
        import json

        json.dumps(data)  # must be JSON-serialisable as-is


class TestObservability:
    def test_metrics_emitted(self):
        with observe() as observation:
            report = run_service(default_config(seed=0, duration=10.0))
        metrics = observation.metrics
        assert metrics.counter_sum("repro_serve_requests_total") == report.offered
        assert metrics.counter_sum("repro_serve_completed_total") == report.completed
        assert metrics.counter_sum("repro_serve_batches_total") == report.batches
        (histogram,) = [
            state for (name, _), state in metrics.histograms.items()
            if name == "repro_serve_latency_seconds"
        ]
        assert histogram.count == report.completed

    def test_spans_one_per_request(self):
        with observe(spans=True) as observation:
            report = run_service(default_config(seed=0, duration=10.0))
        serve_spans = [
            span for span in observation.tracer.spans
            if span.category == "serve"
        ]
        assert len(serve_spans) == report.completed
        assert all(span.end >= span.start for span in serve_spans)


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 0.50) == 0.2
        assert percentile(values, 0.99) == 0.4
        assert percentile(values, 1.0) == 0.4
        assert percentile([], 0.5) == 0.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServeExperiment:
    def test_registered_and_runs_small(self):
        from repro.experiments import EXPERIMENTS
        from repro.experiments.serving import serving_curves

        assert EXPERIMENTS["serve"] is serving_curves
        report = serving_curves(rates=(2.0, 8.0), seed=0)
        assert report.experiment_id == "serve"
        goodput = report.series["goodput (req/s)"]
        assert set(goodput) == {2.0, 8.0}
        assert goodput[8.0] > goodput[2.0]
