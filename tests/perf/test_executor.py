"""The sweep executor: ordered merge, cache layers, parallel equivalence."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy
from repro.perf import SimJob, SweepExecutor, current_executor, evaluate, sweep


def _gather_job(seed: int = 0, n: int = 500, p: int = 3) -> SimJob:
    return SimJob.collective(
        "gather", ucf_testbed(p), n, root=RootPolicy.FASTEST, seed=seed
    )


class TestEvaluate:
    def test_results_come_back_in_job_order(self):
        jobs = [_gather_job(n=n) for n in (900, 300, 600)]
        results = evaluate(jobs)
        times = {job.content_hash: result.time
                 for job, result in zip(jobs, results)}
        # Re-evaluating any permutation maps the same hash to the same
        # result, and positions follow the submission order.
        shuffled = [jobs[2], jobs[0], jobs[1]]
        reshuffled = evaluate(shuffled)
        assert [r.time for r in reshuffled] == [
            times[job.content_hash] for job in shuffled
        ]

    def test_duplicates_simulate_once(self):
        executor = SweepExecutor(jobs=1)
        job = _gather_job()
        results = executor.evaluate([job, job, job])
        assert executor.cache_misses == 1
        assert executor.cache_hits == 2
        assert results[0] == results[1] == results[2]

    def test_memo_survives_across_batches(self):
        executor = SweepExecutor(jobs=1)
        first = executor.evaluate([_gather_job()])
        again = executor.evaluate([_gather_job()])
        assert executor.cache_misses == 1
        assert executor.cache_hits == 1
        assert first == again

    def test_parallel_results_equal_serial(self):
        jobs = [_gather_job(n=n, p=p) for n in (400, 800) for p in (2, 3)]
        serial = SweepExecutor(jobs=1).evaluate(jobs)
        with SweepExecutor(jobs=2) as pooled:
            parallel = pooled.evaluate(jobs)
        assert parallel == serial


class TestSweepContext:
    def test_installs_and_restores_current_executor(self):
        assert current_executor() is None
        with sweep(jobs=1) as outer:
            assert current_executor() is outer
            with sweep(jobs=1) as inner:
                assert current_executor() is inner
            assert current_executor() is outer
        assert current_executor() is None

    def test_evaluate_routes_through_active_sweep(self):
        with sweep(jobs=1) as executor:
            evaluate([_gather_job()])
            evaluate([_gather_job()])
        assert executor.cache_misses == 1
        assert executor.cache_hits == 1

    def test_evaluate_outside_sweep_keeps_no_state(self):
        job = _gather_job()
        evaluate([job])
        assert current_executor() is None


class TestSeedIsolation:
    @settings(max_examples=10, deadline=None)
    @given(st.tuples(st.integers(0, 40), st.integers(0, 40)).filter(
        lambda pair: pair[0] != pair[1]
    ))
    def test_cache_never_serves_across_differing_seeds(self, seeds):
        """A warm cache entry for one seed must not answer another.

        Runs seed A, then B against the same executor (warm memo), then
        B against a fresh executor; the warm and cold answers for B must
        agree exactly.
        """
        seed_a, seed_b = seeds
        job_a, job_b = _gather_job(seed=seed_a), _gather_job(seed=seed_b)
        assert job_a.content_hash != job_b.content_hash
        executor = SweepExecutor(jobs=1)
        executor.evaluate([job_a])
        warm = executor.evaluate([job_b])[0]
        cold = SweepExecutor(jobs=1).evaluate([_gather_job(seed=seed_b)])[0]
        assert executor.cache_misses == 2
        assert warm == cold
