"""End-to-end determinism: parallel sweeps render byte-identical reports.

These are the property tests backing the ``--jobs`` flag's contract —
the rendered experiment artifacts (including the seeded robustness
report, whose fault coins are schedule-sensitive by construction) must
be byte-for-byte identical whatever the worker count.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig3_gather import fig3a_gather_root
from repro.experiments.robustness import robustness_report
from repro.perf import sweep


def _render(factory, jobs: int) -> str:
    with sweep(jobs=jobs):
        return factory().render()


@pytest.mark.parametrize("jobs", [2, 4])
def test_fig3a_report_is_byte_identical_under_parallelism(jobs):
    def factory():
        return fig3a_gather_root(sizes_kb=[100], processor_counts=[2, 3])

    assert _render(factory, jobs) == _render(factory, 1)


@pytest.mark.parametrize("jobs", [4])
def test_seeded_robustness_report_is_byte_identical_under_parallelism(jobs):
    def factory():
        return robustness_report(processor_counts=(2,), seed=3)

    assert _render(factory, jobs) == _render(factory, 1)


def test_repeated_serial_renders_are_stable():
    def factory():
        return robustness_report(processor_counts=(2,), seed=3)

    assert _render(factory, 1) == _render(factory, 1)
