"""The persistent disk cache: hits, invalidation, corruption, identity.

The cache is an accelerator with two hard promises: warm runs render
byte-identical output to cold runs, and *no* on-disk state — missing,
truncated, corrupted, or from another version — can ever break a sweep
(worst case it recomputes).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy
from repro.experiments.fig3_gather import fig3a_gather_root
from repro.perf import (
    CACHE_SCHEMA_VERSION,
    DiskCache,
    SimJob,
    SimResult,
    SweepExecutor,
    default_cache_dir,
    effective_jobs,
    sweep,
)


def _gather_job(seed: int = 0, n: int = 500, p: int = 3) -> SimJob:
    return SimJob.collective(
        "gather", ucf_testbed(p), n, root=RootPolicy.FASTEST, seed=seed
    )


def _result(name: str = "gather") -> SimResult:
    return SimResult(name=name, time=1.25, predicted_time=1.5, supersteps=3)


class TestDiskCache:
    def test_round_trip_is_exact(self, tmp_path):
        cache = DiskCache(tmp_path)
        stored = SimResult(
            name="gather", time=0.1 + 0.2, predicted_time=1e-9 / 3.0, supersteps=7
        )
        cache.put("ab" + "0" * 62, stored)
        restored = cache.get("ab" + "0" * 62)
        assert restored == stored  # same doubles, not approximately

    def test_absent_key_misses(self, tmp_path):
        assert DiskCache(tmp_path).get("ff" + "0" * 62) is None

    def test_none_predicted_time_round_trips(self, tmp_path):
        cache = DiskCache(tmp_path)
        stored = SimResult(name="app", time=2.0, predicted_time=None, supersteps=1)
        cache.put("cd" + "0" * 62, stored)
        assert cache.get("cd" + "0" * 62) == stored

    def test_version_bump_invalidates(self, tmp_path):
        old = DiskCache(tmp_path, version="v-old")
        old.put("ab" + "0" * 62, _result())
        new = DiskCache(tmp_path, version="v-new")
        assert new.get("ab" + "0" * 62) is None
        assert len(old) == 1 and len(new) == 0

    def test_default_version_embeds_schema_constant(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.version.startswith(f"v{CACHE_SCHEMA_VERSION}-")

    @pytest.mark.parametrize(
        "payload",
        [
            "",  # empty file
            '{"name": "gather", "time": 1.2',  # truncated mid-entry
            "not json at all",
            '{"name": "gather"}',  # missing keys
            '{"name": "gather", "time": "soon", '
            '"predicted_time": null, "supersteps": 1}',  # wrong types
            '[1, 2, 3]',  # wrong shape
        ],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, payload):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        path = cache.dir / key[:2] / f"{key}.json"
        path.write_text(payload)
        assert cache.get(key) is None

    def test_put_overwrites_corrupt_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        (cache.dir / key[:2] / f"{key}.json").write_text("garbage")
        cache.put(key, _result())
        assert cache.get(key) == _result()

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        leftovers = [
            p for p in (cache.dir / key[:2]).iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []

    def test_write_failure_is_silent(self, tmp_path):
        cache = DiskCache(tmp_path / "file-in-the-way")
        (tmp_path / "file-in-the-way").write_text("")  # mkdir will fail
        cache.put("ab" + "0" * 62, _result())  # must not raise
        assert cache.get("ab" + "0" * 62) is None

    def test_wipe_removes_every_version_dir(self, tmp_path):
        cache = DiskCache(tmp_path / "sweeps")
        cache.put("ab" + "0" * 62, _result())
        cache.wipe()
        assert not cache.dir.exists()
        assert len(cache) == 0
        assert cache.stats().entries == 0

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"

    def test_get_put_json_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ef" + "0" * 62
        payload = {"plan": {"op": "gather"}, "time": 0.1 + 0.2}
        cache.put_json(key, payload)
        assert cache.get_json(key) == payload  # same doubles back

    def test_get_json_non_dict_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put_json(key, {"ok": 1})
        (cache.dir / key[:2] / f"{key}.json").write_text("[1, 2]")
        assert cache.get_json(key) is None


class TestStatsAndPrune:
    def _fill(self, cache: DiskCache, count: int) -> list[str]:
        keys = [f"{i:02x}" + "0" * 62 for i in range(count)]
        for i, key in enumerate(keys):
            cache.put(key, _result(name=f"r{i}"))
        return keys

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.stats().entries == 0
        self._fill(cache, 3)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.bytes > 0
        assert stats.stale_versions == () and stats.stale_bytes == 0
        assert stats.total_bytes == stats.bytes

    def test_stats_reports_stale_version_dirs(self, tmp_path):
        old = DiskCache(tmp_path, version="v1-0.1.0")
        self._fill(old, 2)
        new = DiskCache(tmp_path, version="v2-0.2.0")
        self._fill(new, 1)
        stats = new.stats()
        assert stats.entries == 1
        assert stats.stale_versions == ("v1-0.1.0",)
        assert stats.stale_bytes > 0
        assert stats.total_bytes == stats.bytes + stats.stale_bytes

    def test_prune_zero_empties_current_version(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._fill(cache, 3)
        before = cache.stats().bytes
        removed, freed = cache.prune(0)
        assert removed == 3 and freed == before
        assert len(cache) == 0

    def test_prune_removes_stale_versions_first(self, tmp_path):
        old = DiskCache(tmp_path, version="v1-0.1.0")
        self._fill(old, 2)
        new = DiskCache(tmp_path, version="v2-0.2.0")
        self._fill(new, 1)
        # A budget large enough for the current entries: only the stale
        # version directory goes.
        removed, freed = new.prune(max_bytes=10**6)
        assert removed == 1 and freed > 0
        assert not (tmp_path / "v1-0.1.0").exists()
        assert len(new) == 1

    def test_prune_evicts_oldest_entries_first(self, tmp_path):
        cache = DiskCache(tmp_path)
        keys = self._fill(cache, 3)
        paths = [cache.dir / k[:2] / f"{k}.json" for k in keys]
        for age, path in enumerate(paths):
            os.utime(path, (1000 + age, 1000 + age))
        size = paths[0].stat().st_size
        # Budget for roughly two entries: the oldest one is evicted.
        cache.prune(max_bytes=2 * size + 1)
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()

    def test_prune_never_touches_non_version_dirs(self, tmp_path):
        """A nested decision-cache root under the sweep root survives."""
        cache = DiskCache(tmp_path)
        self._fill(cache, 1)
        nested = tmp_path / "decisions" / "v2-0.2.0" / "ab"
        nested.mkdir(parents=True)
        (nested.parent.parent / "note.txt").write_text("keep me")
        removed, _ = cache.prune(0)
        assert removed == 1
        assert nested.is_dir()
        assert (tmp_path / "decisions" / "note.txt").read_text() == "keep me"

    def test_wipe_never_touches_non_version_dirs(self, tmp_path):
        """wipe() drops every version dir but spares nested caches."""
        cache = DiskCache(tmp_path)
        self._fill(cache, 2)
        stale = tmp_path / "v1-0.1.0"
        stale.mkdir()
        (stale / "old.json").write_text("{}")
        nested = tmp_path / "decisions" / "v2-0.2.0"
        nested.mkdir(parents=True)
        (tmp_path / "decisions" / "note.txt").write_text("keep me")
        cache.wipe()
        assert len(cache) == 0
        assert not stale.exists()
        assert nested.is_dir()
        assert (tmp_path / "decisions" / "note.txt").read_text() == "keep me"

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(tmp_path).prune(-1)

    def test_prune_on_empty_cache_is_a_noop(self, tmp_path):
        assert DiskCache(tmp_path).prune(0) == (0, 0)


class TestExecutorIntegration:
    def test_cold_then_warm(self, tmp_path):
        jobs = [_gather_job(n=n) for n in (300, 600)]
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        cold_results = cold.evaluate(jobs)
        assert cold.disk_hits == 0 and cold.cache_misses == 2

        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm_results = warm.evaluate(jobs)
        assert warm.disk_hits == 2 and warm.cache_misses == 0
        assert warm_results == cold_results

    def test_corrupt_entry_recomputes(self, tmp_path):
        job = _gather_job()
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        expected = cold.evaluate([job])
        key = job.content_hash
        entry = cold._disk.dir / key[:2] / f"{key}.json"
        entry.write_text(entry.read_text()[:10])  # truncate in place

        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        assert warm.evaluate([job]) == expected
        assert warm.disk_hits == 0 and warm.cache_misses == 1
        # ... and the recompute repaired the entry.
        assert json.loads(entry.read_text())["supersteps"] >= 1

    def test_version_bump_recomputes(self, tmp_path):
        job = _gather_job()
        old = SweepExecutor(jobs=1, cache_dir=tmp_path, cache_version="v-old")
        expected = old.evaluate([job])
        new = SweepExecutor(jobs=1, cache_dir=tmp_path, cache_version="v-new")
        assert new.evaluate([job]) == expected
        assert new.disk_hits == 0 and new.cache_misses == 1

    def test_memo_still_shields_disk(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        job = _gather_job()
        executor.evaluate([job, job])
        executor.evaluate([job])
        assert executor.cache_misses == 1
        assert executor.disk_hits == 0  # memo answered, disk never probed
        assert executor.cache_hits == 2

    def test_counters_unchanged_without_cache_dir(self):
        executor = SweepExecutor(jobs=1)
        job = _gather_job()
        executor.evaluate([job, job])
        assert executor.disk_hits == 0
        assert executor.cache_misses == 1 and executor.cache_hits == 1


def _render(cache_dir) -> str:
    with sweep(jobs=1, cache_dir=cache_dir):
        return fig3a_gather_root(sizes_kb=[100], processor_counts=[2, 3]).render()


class TestWarmColdIdentity:
    def test_warm_render_is_byte_identical_to_cold(self, tmp_path):
        cold = _render(tmp_path)
        warm = _render(tmp_path)
        assert warm == cold

    def test_cached_render_matches_uncached(self, tmp_path):
        with sweep(jobs=1):
            uncached = fig3a_gather_root(
                sizes_kb=[100], processor_counts=[2, 3]
            ).render()
        assert _render(tmp_path) == uncached


class TestEffectiveJobs:
    def test_serial_passes_through(self, capsys):
        assert effective_jobs(1) == 1
        assert capsys.readouterr().err == ""

    def test_clamps_on_single_cpu_host(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert effective_jobs(4) == 1
        assert "1-CPU host" in capsys.readouterr().err

    def test_clamps_to_core_count(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert effective_jobs(8) == 2
        assert "clamping to 2" in capsys.readouterr().err

    def test_within_cores_untouched(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert effective_jobs(3) == 3
        assert capsys.readouterr().err == ""

    def test_nonpositive_becomes_serial(self):
        assert effective_jobs(0) == 1
        assert effective_jobs(-3) == 1
