"""The persistent disk cache: hits, invalidation, corruption, identity.

The cache is an accelerator with two hard promises: warm runs render
byte-identical output to cold runs, and *no* on-disk state — missing,
truncated, corrupted, or from another version — can ever break a sweep
(worst case it recomputes).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy
from repro.experiments.fig3_gather import fig3a_gather_root
from repro.perf import (
    CACHE_SCHEMA_VERSION,
    DiskCache,
    SimJob,
    SimResult,
    SweepExecutor,
    default_cache_dir,
    effective_jobs,
    sweep,
)


def _gather_job(seed: int = 0, n: int = 500, p: int = 3) -> SimJob:
    return SimJob.collective(
        "gather", ucf_testbed(p), n, root=RootPolicy.FASTEST, seed=seed
    )


def _result(name: str = "gather") -> SimResult:
    return SimResult(name=name, time=1.25, predicted_time=1.5, supersteps=3)


class TestDiskCache:
    def test_round_trip_is_exact(self, tmp_path):
        cache = DiskCache(tmp_path)
        stored = SimResult(
            name="gather", time=0.1 + 0.2, predicted_time=1e-9 / 3.0, supersteps=7
        )
        cache.put("ab" + "0" * 62, stored)
        restored = cache.get("ab" + "0" * 62)
        assert restored == stored  # same doubles, not approximately

    def test_absent_key_misses(self, tmp_path):
        assert DiskCache(tmp_path).get("ff" + "0" * 62) is None

    def test_none_predicted_time_round_trips(self, tmp_path):
        cache = DiskCache(tmp_path)
        stored = SimResult(name="app", time=2.0, predicted_time=None, supersteps=1)
        cache.put("cd" + "0" * 62, stored)
        assert cache.get("cd" + "0" * 62) == stored

    def test_version_bump_invalidates(self, tmp_path):
        old = DiskCache(tmp_path, version="v-old")
        old.put("ab" + "0" * 62, _result())
        new = DiskCache(tmp_path, version="v-new")
        assert new.get("ab" + "0" * 62) is None
        assert len(old) == 1 and len(new) == 0

    def test_default_version_embeds_schema_constant(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.version.startswith(f"v{CACHE_SCHEMA_VERSION}-")

    @pytest.mark.parametrize(
        "payload",
        [
            "",  # empty file
            '{"name": "gather", "time": 1.2',  # truncated mid-entry
            "not json at all",
            '{"name": "gather"}',  # missing keys
            '{"name": "gather", "time": "soon", '
            '"predicted_time": null, "supersteps": 1}',  # wrong types
            '[1, 2, 3]',  # wrong shape
        ],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, payload):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        path = cache.dir / key[:2] / f"{key}.json"
        path.write_text(payload)
        assert cache.get(key) is None

    def test_put_overwrites_corrupt_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        (cache.dir / key[:2] / f"{key}.json").write_text("garbage")
        cache.put(key, _result())
        assert cache.get(key) == _result()

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        leftovers = [
            p for p in (cache.dir / key[:2]).iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []

    def test_write_failure_is_silent(self, tmp_path):
        cache = DiskCache(tmp_path / "file-in-the-way")
        (tmp_path / "file-in-the-way").write_text("")  # mkdir will fail
        cache.put("ab" + "0" * 62, _result())  # must not raise
        assert cache.get("ab" + "0" * 62) is None

    def test_wipe_removes_everything(self, tmp_path):
        cache = DiskCache(tmp_path / "sweeps")
        cache.put("ab" + "0" * 62, _result())
        cache.wipe()
        assert not (tmp_path / "sweeps").exists()
        assert len(cache) == 0

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"


class TestExecutorIntegration:
    def test_cold_then_warm(self, tmp_path):
        jobs = [_gather_job(n=n) for n in (300, 600)]
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        cold_results = cold.evaluate(jobs)
        assert cold.disk_hits == 0 and cold.cache_misses == 2

        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm_results = warm.evaluate(jobs)
        assert warm.disk_hits == 2 and warm.cache_misses == 0
        assert warm_results == cold_results

    def test_corrupt_entry_recomputes(self, tmp_path):
        job = _gather_job()
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        expected = cold.evaluate([job])
        key = job.content_hash
        entry = cold._disk.dir / key[:2] / f"{key}.json"
        entry.write_text(entry.read_text()[:10])  # truncate in place

        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        assert warm.evaluate([job]) == expected
        assert warm.disk_hits == 0 and warm.cache_misses == 1
        # ... and the recompute repaired the entry.
        assert json.loads(entry.read_text())["supersteps"] >= 1

    def test_version_bump_recomputes(self, tmp_path):
        job = _gather_job()
        old = SweepExecutor(jobs=1, cache_dir=tmp_path, cache_version="v-old")
        expected = old.evaluate([job])
        new = SweepExecutor(jobs=1, cache_dir=tmp_path, cache_version="v-new")
        assert new.evaluate([job]) == expected
        assert new.disk_hits == 0 and new.cache_misses == 1

    def test_memo_still_shields_disk(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        job = _gather_job()
        executor.evaluate([job, job])
        executor.evaluate([job])
        assert executor.cache_misses == 1
        assert executor.disk_hits == 0  # memo answered, disk never probed
        assert executor.cache_hits == 2

    def test_counters_unchanged_without_cache_dir(self):
        executor = SweepExecutor(jobs=1)
        job = _gather_job()
        executor.evaluate([job, job])
        assert executor.disk_hits == 0
        assert executor.cache_misses == 1 and executor.cache_hits == 1


def _render(cache_dir) -> str:
    with sweep(jobs=1, cache_dir=cache_dir):
        return fig3a_gather_root(sizes_kb=[100], processor_counts=[2, 3]).render()


class TestWarmColdIdentity:
    def test_warm_render_is_byte_identical_to_cold(self, tmp_path):
        cold = _render(tmp_path)
        warm = _render(tmp_path)
        assert warm == cold

    def test_cached_render_matches_uncached(self, tmp_path):
        with sweep(jobs=1):
            uncached = fig3a_gather_root(
                sizes_kb=[100], processor_counts=[2, 3]
            ).render()
        assert _render(tmp_path) == uncached


class TestEffectiveJobs:
    def test_serial_passes_through(self, capsys):
        assert effective_jobs(1) == 1
        assert capsys.readouterr().err == ""

    def test_clamps_on_single_cpu_host(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert effective_jobs(4) == 1
        assert "1-CPU host" in capsys.readouterr().err

    def test_clamps_to_core_count(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert effective_jobs(8) == 2
        assert "clamping to 2" in capsys.readouterr().err

    def test_within_cores_untouched(self, monkeypatch, capsys):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert effective_jobs(3) == 3
        assert capsys.readouterr().err == ""

    def test_nonpositive_becomes_serial(self):
        assert effective_jobs(0) == 1
        assert effective_jobs(-3) == 1
