"""Properties of the SimJob content hash.

The hash is the cache key for every layer of the sweep executor, so it
must be canonical (spelling order cannot matter), discriminating (any
configuration change must change it) and process-independent (no
``PYTHONHASHSEED`` or ``id()`` leakage).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cluster.presets import flat_cluster, ucf_testbed
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.errors import ReproError
from repro.perf import APP_OPS, COLLECTIVE_OPS, SimJob
from repro.perf.job import content_tokens


def _hash(job: SimJob) -> str:
    return job.content_hash


class TestCanonical:
    def test_kwarg_spelling_order_is_irrelevant(self):
        topology = ucf_testbed(4)
        a = SimJob.collective(
            "gather", topology, 1000, root=RootPolicy.FASTEST, seed=7
        )
        b = SimJob.collective(
            "gather", topology, 1000, seed=7, root=RootPolicy.FASTEST
        )
        assert _hash(a) == _hash(b)

    def test_equal_topologies_hash_equally(self):
        a = SimJob.collective("gather", ucf_testbed(4), 1000, seed=0)
        b = SimJob.collective("gather", ucf_testbed(4), 1000, seed=0)
        assert a.topology is not b.topology
        assert _hash(a) == _hash(b)

    def test_dict_kwarg_insertion_order_is_irrelevant(self):
        out_ab: list[bytes] = []
        out_ba: list[bytes] = []
        content_tokens({"a": 1, "b": 2}, out_ab)
        content_tokens({"b": 2, "a": 1}, out_ba)
        assert b"".join(out_ab) == b"".join(out_ba)

    def test_hash_is_pythonhashseed_independent(self):
        script = (
            "from repro.cluster.presets import ucf_testbed\n"
            "from repro.perf import SimJob\n"
            "from repro.collectives import RootPolicy\n"
            "job = SimJob.collective('gather', ucf_testbed(4), 1000,\n"
            "                        root=RootPolicy.FASTEST, seed=3)\n"
            "print(job.content_hash)\n"
        )
        digests = set()
        for hashseed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env.setdefault("PYTHONPATH", "src")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestDiscriminating:
    def test_every_field_feeds_the_hash(self):
        topology = ucf_testbed(4)
        base = SimJob.collective("gather", topology, 1000, seed=0)
        variants = [
            SimJob.collective("scatter", topology, 1000, seed=0),
            SimJob.collective("gather", flat_cluster(4), 1000, seed=0),
            SimJob.collective("gather", ucf_testbed(5), 1000, seed=0),
            SimJob.collective("gather", topology, 1001, seed=0),
            SimJob.collective("gather", topology, 1000, seed=1),
            SimJob.collective("gather", topology, 1000, seed=0,
                              root=RootPolicy.SLOWEST),
        ]
        digests = {_hash(base), *(_hash(v) for v in variants)}
        assert len(digests) == len(variants) + 1

    def test_enum_members_are_distinguished(self):
        topology = ucf_testbed(4)
        a = SimJob.collective("gather", topology, 1000,
                              workload=WorkloadPolicy.EQUAL)
        b = SimJob.collective("gather", topology, 1000,
                              workload=WorkloadPolicy.BALANCED)
        assert _hash(a) != _hash(b)

    def test_int_and_float_do_not_collide(self):
        out_int: list[bytes] = []
        out_float: list[bytes] = []
        content_tokens(1, out_int)
        content_tokens(1.0, out_float)
        assert b"".join(out_int) != b"".join(out_float)

    def test_array_content_and_dtype_feed_the_hash(self):
        def digest(array):
            out: list[bytes] = []
            content_tokens(array, out)
            return b"".join(out)

        base = digest(np.array([1, 2, 3], dtype=np.int32))
        assert digest(np.array([1, 2, 4], dtype=np.int32)) != base
        assert digest(np.array([1, 2, 3], dtype=np.int64)) != base


class TestValidation:
    def test_unknown_ops_raise(self):
        topology = ucf_testbed(2)
        with pytest.raises(ReproError, match="unknown collective"):
            SimJob.collective("sample_sort", topology, 10)
        with pytest.raises(ReproError, match="unknown app"):
            SimJob.app("gather", topology, 10)

    def test_op_registries_are_disjoint(self):
        assert not set(COLLECTIVE_OPS) & set(APP_OPS)

    def test_unsupported_kwarg_types_raise(self):
        job = SimJob.collective(
            "gather", ucf_testbed(2), 10, callback=lambda: None
        )
        with pytest.raises(ReproError, match="cannot content-hash"):
            job.content_hash
