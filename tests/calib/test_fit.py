"""Trace-driven calibration: step equations, campaigns, and the fit."""

import dataclasses
import json

import pytest

from repro.calib import (
    DEFAULT_SIZES,
    calibration_campaign,
    fit_params,
    load_runs,
    step_equations,
)
from repro.cluster import two_lans
from repro.collectives import run_broadcast, run_gather
from repro.errors import CalibrationError
from repro.model import calibrate
from repro.obs.accounting import collect_run_obs

TOPOLOGY = two_lans()


class TestStepEquations:
    def test_unknown_source_rejected(self):
        run = collect_run_obs(run_gather(TOPOLOGY, 4096, macro=True))
        with pytest.raises(CalibrationError):
            step_equations(run, source="wishful")

    def test_gather_joins_one_to_one(self):
        outcome = run_gather(TOPOLOGY, 4096, macro=True)
        run = collect_run_obs(outcome)
        eqs = step_equations(run)
        assert len(eqs) == len(run.predicted)
        for eq in eqs:
            assert eq.rhs == eq.observed - eq.w
            assert len(eq.h) == len(run.machines)

    def test_lumped_broadcast_rejected_wholesale(self):
        # The two-phase broadcast performs two syncs per analytic step,
        # so its marks cannot join 1:1 — no equations, by design.
        run = collect_run_obs(run_broadcast(TOPOLOGY, 4096, macro=True))
        assert step_equations(run) == ()

    def test_predicted_source_reads_analytic_costs(self):
        run = collect_run_obs(run_gather(TOPOLOGY, 4096, macro=True))
        sim = step_equations(run, source="simulated")
        pred = step_equations(run, source="predicted")
        for s, p in zip(sim, pred):
            assert (s.level, s.w, s.h) == (p.level, p.w, p.h)
        observed_pred = [p.observed for p in pred]
        expected = [w + gh + L for _, _, w, gh, L in run.predicted]
        assert observed_pred == pytest.approx(expected)


class TestCampaign:
    def test_root_sweep_shape(self):
        runs = calibration_campaign(TOPOLOGY, sizes=(4096,))
        assert len(runs) == TOPOLOGY.num_machines
        names = {run.name for run in runs}
        assert len(names) == len(runs)  # every root distinct

    def test_campaign_deterministic(self):
        a = calibration_campaign(TOPOLOGY, sizes=(4096,), roots=(0, 1))
        b = calibration_campaign(TOPOLOGY, sizes=(4096,), roots=(0, 1))
        assert a == b

    def test_default_sizes_span_an_order_of_magnitude(self):
        assert max(DEFAULT_SIZES) / min(DEFAULT_SIZES) >= 10


class TestLoadRuns:
    def test_round_trip_through_disk(self, tmp_path):
        runs = calibration_campaign(TOPOLOGY, sizes=(4096,), roots=(0,))
        path = tmp_path / "runs.json"
        path.write_text(json.dumps(
            {"runs": [run.to_jsonable() for run in runs]}
        ))
        assert load_runs(str(path)) == runs

    def test_missing_file(self, tmp_path):
        with pytest.raises(CalibrationError):
            load_runs(str(tmp_path / "nope.json"))

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(CalibrationError):
            load_runs(str(path))

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CalibrationError):
            load_runs(str(path))


class TestFitParams:
    def test_no_usable_runs_raises(self):
        run = collect_run_obs(run_broadcast(TOPOLOGY, 4096, macro=True))
        with pytest.raises(CalibrationError):
            fit_params([run], TOPOLOGY)

    def test_foreign_machines_rejected(self):
        runs = calibration_campaign(TOPOLOGY, sizes=(4096,), roots=(0,))
        renamed = dataclasses.replace(
            runs[0], machines=tuple(f"x-{m}" for m in runs[0].machines)
        )
        with pytest.raises(CalibrationError):
            fit_params([renamed], TOPOLOGY)

    def test_predicted_fit_recovers_priors(self):
        # The estimator round-trip on a small campaign: see
        # tests/properties/test_prop_calibration.py for the full
        # acceptance version with noise.
        runs = calibration_campaign(TOPOLOGY, sizes=(4096, 16384))
        result = fit_params(runs, TOPOLOGY, source="predicted")
        priors = calibrate(TOPOLOGY)
        assert result.g == pytest.approx(priors.g, rel=1e-9)
        assert result.residual < 1e-9
        assert result.runs_skipped == 0

    def test_simulated_fit_reports_honest_residual(self):
        runs = calibration_campaign(TOPOLOGY, sizes=(4096, 16384))
        result = fit_params(runs, TOPOLOGY, source="simulated")
        # Effective parameters absorb per-message DES overheads the
        # analytic model omits: the fit converges with a nonzero
        # residual and strictly positive fitted coefficients.
        assert result.residual > 0
        assert all(value > 0 for _, value in result.G)
        assert all(value >= 0 for _, value in result.L)

    def test_describe_mentions_provenance(self):
        runs = calibration_campaign(TOPOLOGY, sizes=(4096,))
        result = fit_params(runs, TOPOLOGY, source="predicted")
        text = result.describe()
        assert "source=predicted" in text
        assert "g =" in text

    def test_fitted_params_serialise_as_topology_v2(self):
        from repro.cluster.serialization import dumps, loads_with_params

        runs = calibration_campaign(TOPOLOGY, sizes=(4096,))
        result = fit_params(runs, TOPOLOGY, source="predicted")
        restored_topo, restored_params = loads_with_params(
            dumps(TOPOLOGY, params=result.params)
        )
        assert restored_params.g == result.params.g
        assert restored_params.r == result.params.r
        assert [m.name for m in restored_topo.machines] == [
            m.name for m in TOPOLOGY.machines
        ]
