#!/usr/bin/env python3
"""Probing HBSP parameters empirically, BSPlib style.

The model "assumes that such costs have been determined appropriately"
(Section 3.3).  This example determines them two ways and compares:

1. **calibration** — derive g, r, L from the declared machine specs;
2. **probing** — measure them by running micro-benchmarks (empty
   supersteps, two-size ping messages) on the simulated machine, the
   way BSPlib's bsp_probe parameterises real hardware.

It finishes with an ASCII Gantt chart of a gather, showing where the
simulated time actually goes (the root's solid run of drains).

Run:  python examples/probe_parameters.py
"""

from repro import ucf_testbed, run_gather
from repro.model import calibrate, probe_params
from repro.util.tables import AsciiTable


def main() -> None:
    topology = ucf_testbed(6)
    params = calibrate(topology)
    report = probe_params(topology)

    table = AsciiTable(
        "calibrated vs probed parameters (probed values include "
        "pack/unpack, hence 'effective')",
        ["machine", "r (calibrated)", "r (probed)"],
    )
    for j, machine in enumerate(topology.machines):
        table.add_row([machine.name, params.r_of(0, j), report.r[j]])
    print(table.render())
    print(f"g: calibrated {params.g:.3g} s/B, probed (effective) {report.g:.3g} s/B")
    print(f"L(1,0): calibrated {params.L_of(1, 0):.6f} s, "
          f"probed {report.L[(1, 0)]:.6f} s")
    print()

    outcome = run_gather(topology, 100_000, trace=True)
    print("where a gather's time goes (g=gather root at the top):")
    print(outcome.result.trace.gantt(width=64))


if __name__ == "__main__":
    main()
