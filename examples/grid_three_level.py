#!/usr/bin/env python3
"""An HBSP^3 computational grid (Section 3's claim beyond k = 2).

The paper specifies algorithms for k <= 2 and notes "one can generalize
the approach given here for these systems" — this library does, and
this example exercises the generalisation: a two-site grid (WAN over
campus backbones over Ethernet LANs) running gather, reduce, and
broadcast, with per-level cost ledgers showing where the WAN hurts.

Run:  python examples/grid_three_level.py
"""

from repro import grid_three_level, run_broadcast, run_gather, run_reduce
from repro.util.units import format_time

N_ITEMS = 64_000  # 250 KB


def main() -> None:
    topology = grid_three_level(sites=2, lans_per_site=2, p_per_lan=3)
    print(topology.describe())
    print()

    gather = run_gather(topology, N_ITEMS)
    print(f"gather:    simulated {format_time(gather.time)}, "
          f"predicted {format_time(gather.predicted_time)}")
    print(gather.predicted.describe())
    print()

    reduce_out = run_reduce(topology, N_ITEMS // 10)
    print(f"reduce:    simulated {format_time(reduce_out.time)}, "
          f"predicted {format_time(reduce_out.predicted_time)}")
    print("(a reduction moves only `width` items per link — compare its")
    print(" super3-step to the gather's, which hauls everything over the WAN)")
    print(reduce_out.predicted.describe())
    print()

    broadcast = run_broadcast(topology, N_ITEMS, phases={3: "two", 2: "two", 1: "two"})
    print(f"broadcast: simulated {format_time(broadcast.time)}, "
          f"predicted {format_time(broadcast.predicted_time)}")
    penalty = broadcast.predicted.hierarchy_penalty()
    print(f"hierarchy penalty (levels >= 2): {format_time(penalty)} "
          f"({100 * penalty / broadcast.predicted.total:.1f}% of the predicted total)")

    sizes = {v[0] for v in broadcast.values.values()}
    assert sizes == {N_ITEMS}
    print(f"verified: all {topology.num_machines} processors hold all items")


if __name__ == "__main__":
    main()
