#!/usr/bin/env python3
"""Quickstart: run the paper's two collectives on the simulated testbed.

Builds the ten-workstation UCF testbed, gathers 100 KB of integers onto
the fastest vs the slowest root, and broadcasts them back — printing
simulated times, model predictions, and the improvement factors the
paper reports.

Run:  python examples/quickstart.py
"""

from repro import RootPolicy, WorkloadPolicy, run_broadcast, run_gather, ucf_testbed
from repro.util.units import format_time

N_ITEMS = 25_600  # 100 KB of 4-byte integers, the paper's smallest input


def main() -> None:
    topology = ucf_testbed(10)
    print(topology.describe())
    print()

    # --- gather: root selection matters (Figure 3a) -----------------------
    slow_root = run_gather(
        topology, N_ITEMS, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL
    )
    fast_root = run_gather(
        topology, N_ITEMS, root=RootPolicy.FASTEST, workload=WorkloadPolicy.EQUAL
    )
    print(f"gather, slow root (T_s):  {format_time(slow_root.time)}")
    print(f"gather, fast root (T_f):  {format_time(fast_root.time)}")
    print(f"improvement T_s/T_f:      {slow_root.time / fast_root.time:.3f}")
    print(f"model prediction (T_f):   {format_time(fast_root.predicted_time)}")
    print()
    print(fast_root.predicted.describe())
    print()

    # --- broadcast: root selection barely matters (Figure 4a) -------------
    b_slow = run_broadcast(topology, N_ITEMS, root=RootPolicy.SLOWEST)
    b_fast = run_broadcast(topology, N_ITEMS, root=RootPolicy.FASTEST)
    print(f"broadcast, slow root:     {format_time(b_slow.time)}")
    print(f"broadcast, fast root:     {format_time(b_fast.time)}")
    print(f"improvement T_s/T_f:      {b_slow.time / b_fast.time:.3f}")
    print()

    # Every processor ended with all n items, bit-identical:
    sizes = {v[0] for v in b_fast.values.values()}
    checksums = {v[1] for v in b_fast.values.values()}
    assert sizes == {N_ITEMS} and len(checksums) == 1
    print(f"broadcast verified: all {len(b_fast.values)} processors hold "
          f"{N_ITEMS} items, checksum {checksums.pop()}")


if __name__ == "__main__":
    main()
