#!/usr/bin/env python3
"""A heterogeneous application built on the public API: dot product.

Demonstrates the paper's two design rules end-to-end on a user
program (not just a collective): a large dot product is scattered
across the testbed, computed locally, and reduced onto the fastest
machine.  We compare:

* equal workloads (the homogeneous-BSP habit), vs
* balanced workloads (``c_j`` proportional to BYTEmark scores).

Unlike the pure gather/broadcast experiments, an application with real
local *computation* benefits sharply from balancing — the slowest
machine no longer holds everyone at the superstep barrier.

Run:  python examples/heterogeneous_dot_product.py
"""

import numpy as np

from repro import HbspRuntime, ucf_testbed
from repro.hbsplib import equal_partition
from repro.util.units import format_time

N = 2_000_000  # elements per input vector
OPS_PER_ELEMENT = 2.0  # one multiply + one add


def dot_product_program(ctx, counts):
    """Superstep program: local partial dot product, then reduction."""
    mine = counts[ctx.pid]
    # Local data generation stands in for reading a shard; the compute
    # charge is what matters for the schedule.
    rng = np.random.default_rng(ctx.pid)
    x = rng.random(mine)
    y = rng.random(mine)
    yield from ctx.compute(mine * OPS_PER_ELEMENT)
    partial = float(x @ y)
    root = ctx.fastest_pid
    if ctx.pid != root:
        yield from ctx.send(root, partial)
    yield from ctx.sync()
    if ctx.pid == root:
        total = partial + sum(m.payload for m in ctx.messages())
        return total
    return None


def run(workload: str) -> float:
    topology = ucf_testbed(10)
    runtime = HbspRuntime(topology)
    if workload == "equal":
        counts = equal_partition(N, runtime.nprocs)
    else:
        counts = runtime.partition(N, balanced=True)
    result = runtime.run(dot_product_program, counts)
    root = runtime.fastest_pid
    print(
        f"{workload:9s} workload: {format_time(result.time)}  "
        f"(root pid {root} got {result.values[root]:.1f}; "
        f"shares {min(counts)}..{max(counts)})"
    )
    return result.time


def main() -> None:
    t_equal = run("equal")
    t_balanced = run("balanced")
    print(f"improvement T_u/T_b: {t_equal / t_balanced:.3f}")
    print()
    print("The gather experiments (Fig. 3b) show balancing barely helps a")
    print("pure communication pattern; with real computation in the")
    print("superstep, balanced workloads pay off exactly as Section 4.1's")
    print("design rules predict.")


if __name__ == "__main__":
    main()
