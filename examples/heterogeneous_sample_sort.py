#!/usr/bin/env python3
"""Parallel sample sort on the heterogeneous testbed.

The paper's future work made concrete: an application (the classic BSP
sorting benchmark) that uses the collectives and both of Section 4.1's
design rules — the fastest machine coordinates splitter selection, and
under the balanced policy both the initial shards *and* the final
buckets are proportional to machine speed (splitters sit at c-weighted
quantiles).

Run:  python examples/heterogeneous_sample_sort.py
"""

from repro import ucf_testbed
from repro.apps import run_sample_sort
from repro.collectives import WorkloadPolicy
from repro.util.tables import AsciiTable
from repro.util.units import format_time

N = 400_000


def main() -> None:
    topology = ucf_testbed(10)
    equal = run_sample_sort(topology, N, workload=WorkloadPolicy.EQUAL)
    balanced = run_sample_sort(topology, N, workload=WorkloadPolicy.BALANCED)

    table = AsciiTable(
        f"sample sort of {N} integers on the 10-machine testbed",
        ["pid", "machine", "c_j", "bucket (balanced)", "bucket (equal)"],
    )
    for pid in range(topology.num_machines):
        table.add_row(
            [
                pid,
                balanced.runtime.topology.machines[pid].name,
                balanced.runtime.fraction_of(pid),
                balanced.values[pid][0],
                equal.values[pid][0],
            ]
        )
    print(table.render())
    print()
    print(f"equal workloads:    {format_time(equal.time)}")
    print(f"balanced workloads: {format_time(balanced.time)}")
    print(f"improvement T_u/T_b: {equal.time / balanced.time:.3f}")

    # Verify the global sort order across processors.
    ordered = [(pid, v) for pid, v in sorted(balanced.values.items()) if v[0] > 0]
    for (_p1, a), (_p2, b) in zip(ordered, ordered[1:]):
        assert a[2] <= b[1], "pid order must be value order"
    assert sum(v[0] for v in balanced.values.values()) == N
    print("verified: globally sorted, all items accounted for")


if __name__ == "__main__":
    main()
