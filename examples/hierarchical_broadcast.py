#!/usr/bin/env python3
"""Broadcasting on the paper's Figure-1 machine (an HBSP^2 cluster).

The machine: a four-processor SMP, a lone SGI workstation, and a LAN of
four workstations, joined by a campus network.  We compare the paper's
one-phase and two-phase broadcast variants at the campus level (the
super²-step), with the two-phase HBSP^1 broadcast inside each cluster,
and show the per-level cost ledger — including the hierarchy penalty
the model exposes (Section 3.4).

Run:  python examples/hierarchical_broadcast.py
"""

from repro import run_broadcast, smp_sgi_lan
from repro.util.units import format_time

N_ITEMS = 128_000  # 500 KB


def main() -> None:
    topology = smp_sgi_lan()
    print(topology.describe())
    print()

    for label, phases in (
        ("one-phase at campus level ", {2: "one", 1: "two"}),
        ("two-phase at campus level ", {2: "two", 1: "two"}),
        ("one-phase everywhere      ", "one"),
    ):
        outcome = run_broadcast(topology, N_ITEMS, phases=phases)
        sizes = {v[0] for v in outcome.values.values()}
        assert sizes == {N_ITEMS}, "every processor must receive all items"
        print(
            f"{label} simulated {format_time(outcome.time)}   "
            f"predicted {format_time(outcome.predicted_time)}   "
            f"supersteps {outcome.supersteps}"
        )
        print(outcome.predicted.describe())
        penalty = outcome.predicted.hierarchy_penalty()
        print(
            f"hierarchy penalty (level >= 2 costs): {format_time(penalty)} "
            f"({100 * penalty / outcome.predicted.total:.1f}% of predicted total)"
        )
        print()


if __name__ == "__main__":
    main()
