#!/usr/bin/env python3
"""Ranking machines with the BYTEmark-style suite (Section 5.1).

Two demonstrations:

1. run the *real* kernel implementations on this host (numeric sort,
   Fourier, LU decomposition, ...) and aggregate BYTEmark-style
   integer/float indices;
2. simulate per-machine scores for the testbed (with the measurement
   noise of a non-dedicated cluster) and derive the ranking and the
   workload fractions ``c_j`` exactly as the experiments do.

Run:  python examples/bytemark_ranking.py
"""

from repro.bytemark import (
    fractions_from_scores,
    measure_host,
    partition_items,
    ranking_from_scores,
    simulate_scores,
)
from repro.cluster import ucf_testbed
from repro.util.tables import AsciiTable


def main() -> None:
    # --- 1. the real thing, on this host ----------------------------------
    print("running the BYTEmark-style suite on this host (scale=1)...")
    result = measure_host(scale=1, seed=0)
    table = AsciiTable("host benchmark", ["kernel", "score (work units/s)"])
    for name, score in result.scores.items():
        table.add_row([name, f"{score:.3e}"])
    print(table.render())
    print(f"integer index: {result.integer_index:.3e}   "
          f"float index: {result.float_index:.3e}   "
          f"overall: {result.index:.3e}")
    print()

    # --- 2. simulated scores for the testbed ------------------------------
    topology = ucf_testbed(10)
    scores = simulate_scores(topology, noise_sigma=0.08, seed=2001)
    ranking = ranking_from_scores(scores)
    fractions = fractions_from_scores(scores)
    n = 256_000  # 1000 KB of integers
    shares = partition_items(n, fractions)

    table = AsciiTable(
        "simulated testbed ranking (noise_sigma=0.08)",
        ["rank", "machine", "score", "c_j", f"items of n={n}"],
    )
    for rank, name in enumerate(ranking):
        table.add_row([rank, name, f"{scores[name]:.3e}", fractions[name], shares[name]])
    print(table.render())
    assert sum(shares.values()) == n
    print(f"P_f = {ranking[0]}, P_s = {ranking[-1]}; shares conserve n exactly")


if __name__ == "__main__":
    main()
